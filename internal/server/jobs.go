package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"voltstack/internal/core"
	"voltstack/internal/explore"
	"voltstack/internal/pdngrid"
	"voltstack/internal/rescache"
	"voltstack/internal/telemetry"
	"voltstack/internal/telemetry/history"
)

// Service metrics. No-ops unless telemetry is enabled.
var (
	mSubmitted  = telemetry.NewCounter("server_jobs_submitted_total")
	mRejected   = telemetry.NewCounter("server_jobs_rejected_total")
	mCompleted  = telemetry.NewCounter("server_jobs_completed_total")
	mFailed     = telemetry.NewCounter("server_jobs_failed_total")
	mCancelled  = telemetry.NewCounter("server_jobs_cancelled_total")
	mResumed    = telemetry.NewCounter("server_jobs_resumed_total")
	mJobHits    = telemetry.NewCounter("server_job_cache_hits_total")
	mReplayed   = telemetry.NewCounter("server_points_replayed_total")
	mDispatched = telemetry.NewCounter("server_points_dispatched_total")
	mForwarded  = telemetry.NewCounter("server_jobs_forwarded_total")
	mRunning    = telemetry.NewGauge("server_jobs_running")
	mQueueDepth = telemetry.NewGauge("server_queue_depth")
)

// ErrDraining rejects submissions while the manager is shutting down.
var ErrDraining = fmt.Errorf("server: draining, not accepting jobs")

// OverloadError rejects a submission because the admission queue is full.
type OverloadError struct {
	// RetryAfter is the server's hint for when to try again.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: job queue full, retry after %s", e.RetryAfter)
}

// Config parameterizes a Manager.
type Config struct {
	// MaxInFlight bounds the jobs running concurrently (default 2). Each
	// job additionally parallelizes internally over its Workers.
	MaxInFlight int
	// QueueDepth bounds the jobs waiting for a runner (default 8);
	// submissions past queued+running capacity are rejected with an
	// OverloadError (HTTP 429).
	QueueDepth int
	// Cache is the content-addressed result cache; nil builds a default
	// in-memory cache.
	Cache *rescache.Cache
	// StateDir, when set, journals job state there so incomplete jobs
	// resume after a restart and completed results survive it.
	StateDir string
	// RetryAfter is the hint attached to overload rejections (default 1s).
	RetryAfter time.Duration
	// History, when set, receives one timestamped record per terminal job
	// (wall/CPU attribution plus the job-scoped solver-health metrics), so
	// solver behavior stays queryable across daemon lifetimes.
	History *history.Store
	// Dispatcher, when set, offloads work to a fleet: sweep points are
	// sharded across workers and non-shardable jobs forwarded whole. A
	// dispatcher returning ErrNoWorkers (or delivering only some points)
	// degrades to local computation — the daemon never depends on the
	// fleet for correctness, only for throughput.
	Dispatcher Dispatcher

	// Test seams: invoked at job start (inside the runner, before any
	// computation) and per completed sweep point. Both may be nil.
	testJobStart func(ctx context.Context, j *Job)
	testOnPoint  func(jobID string, index int)
}

// Job is one submitted evaluation. All exported access goes through
// Status / Result / Done.
type Job struct {
	id  string
	seq int64
	req JobRequest
	key string

	completed atomic.Int64
	done      chan struct{} // closed on terminal transition

	mu        sync.Mutex
	state     JobState
	total     int
	cacheHit  bool
	resumed   bool
	cancelled bool // user asked for cancellation
	errMsg    string
	created   time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc
	result    []byte
	ckpt      *os.File // open checkpoint stream while a sweep runs

	// Request tracing and per-job attribution. trace is minted at Submit
	// when the caller sent no (or an invalid) traceparent; queueSpan
	// covers Submit→run on the process tracer; scope is the job's own
	// telemetry registry + exemplar store, layered over the process
	// registry; stats holds the frozen terminal stats document; cpu0 and
	// alloc0 anchor the run's CPU/allocation deltas.
	trace     telemetry.TraceContext
	queueSpan *telemetry.Span
	scope     *telemetry.Scope
	stats     []byte
	cpu0      float64
	alloc0    uint64
}

// Trace returns the job's trace context.
func (j *Job) Trace() telemetry.TraceContext { return j.trace }

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Kind:        j.req.Kind,
		Key:         j.key,
		Completed:   int(j.completed.Load()),
		Total:       j.total,
		CacheHit:    j.cacheHit,
		Resumed:     j.resumed,
		Error:       j.errMsg,
		ResultBytes: len(j.result),
		TraceID:     j.trace.TraceIDString(),
	}
	if !j.created.IsZero() {
		st.CreatedAt = j.created.UTC().Format(time.RFC3339Nano)
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}

func (j *Job) userCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

func (j *Job) persisted() persistedJob {
	st := j.Status()
	return persistedJob{
		Cancelled:   j.userCancelled(),
		ID:          st.ID,
		Seq:         j.seq,
		Request:     j.req,
		State:       st.State,
		Key:         st.Key,
		Total:       st.Total,
		Completed:   st.Completed,
		CacheHit:    st.CacheHit,
		Resumed:     st.Resumed,
		Error:       st.Error,
		CreatedAt:   st.CreatedAt,
		StartedAt:   st.StartedAt,
		FinishedAt:  st.FinishedAt,
		Traceparent: j.trace.Traceparent(),
	}
}

// Manager owns the job queue, the runner pool, the result cache and the
// journal.
type Manager struct {
	cfg     Config
	cache   *rescache.Cache
	journal *journal

	ctx    context.Context
	cancel context.CancelFunc

	queue     chan *Job
	drainCh   chan struct{}
	drainOnce sync.Once
	draining  atomic.Bool
	wg        sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*Job
	nextSeq int64
}

// NewManager builds a manager, resumes any journaled incomplete jobs and
// starts the runner pool.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	cache := cfg.Cache
	if cache == nil {
		var err error
		if cache, err = rescache.New(rescache.Config{}); err != nil {
			return nil, err
		}
	}
	m := &Manager{
		cfg:     cfg,
		cache:   cache,
		queue:   make(chan *Job, cfg.QueueDepth),
		drainCh: make(chan struct{}),
		jobs:    map[string]*Job{},
	}
	m.ctx, m.cancel = context.WithCancel(context.Background())

	var resumable []*Job
	if cfg.StateDir != "" {
		var err error
		if m.journal, err = newJournal(cfg.StateDir); err != nil {
			return nil, err
		}
		persisted, err := m.journal.load()
		if err != nil {
			return nil, err
		}
		for _, p := range persisted {
			j := m.adoptPersisted(p)
			if !j.Status().State.Terminal() {
				resumable = append(resumable, j)
			}
		}
	}

	for range cfg.MaxInFlight {
		m.wg.Add(1)
		go m.runLoop()
	}
	if len(resumable) > 0 {
		// Resumed jobs re-enter the queue in their original submission
		// order, bypassing admission (they were admitted before the
		// restart). The blocking send feeds however many there are through
		// the bounded queue as runners free up.
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for _, j := range resumable {
				select {
				case m.queue <- j:
					mQueueDepth.Set(float64(len(m.queue)))
				case <-m.ctx.Done():
					return
				}
			}
		}()
	}
	return m, nil
}

// adoptPersisted registers a journaled job. Non-terminal jobs come back
// as queued+resumed; done jobs reload their result lazily.
func (m *Manager) adoptPersisted(p persistedJob) *Job {
	j := &Job{
		id:       p.ID,
		seq:      p.Seq,
		req:      p.Request,
		key:      p.Key,
		state:    p.State,
		total:    p.Total,
		cacheHit: p.CacheHit,
		errMsg:   p.Error,
		done:     make(chan struct{}),
	}
	j.created = parseRFC3339(p.CreatedAt)
	j.finished = parseRFC3339(p.FinishedAt)
	if tc, err := telemetry.ParseTraceparent(p.Traceparent); err == nil {
		j.trace = tc
	}
	j.completed.Store(int64(p.Completed))
	switch {
	case j.state.Terminal():
		close(j.done)
	case p.Cancelled:
		// The previous process died between persisting the cancel intent
		// and the runner marking the job terminal. Finish the cancellation
		// now instead of resuming work the user already asked to stop.
		j.state = StateCancelled
		j.cancelled = true
		if j.errMsg == "" {
			j.errMsg = "cancelled"
		}
		close(j.done)
		defer m.saveMeta(j)
	default:
		j.state = StateQueued
		j.resumed = true
		j.started = time.Time{}
		j.completed.Store(0)
		mResumed.Add(1)
	}
	m.mu.Lock()
	m.jobs[j.id] = j
	if p.Seq >= m.nextSeq {
		m.nextSeq = p.Seq + 1
	}
	m.mu.Unlock()
	return j
}

func parseRFC3339(s string) time.Time {
	if s == "" {
		return time.Time{}
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}
	}
	return t
}

// jobCacheKey is the job's content address: schema version, code version
// and the normalized request, minus fields that cannot change the result
// (Workers only tunes concurrency; every output is worker-count
// invariant).
func jobCacheKey(req JobRequest) (string, error) {
	req.Workers = 0
	return rescache.Key("voltstack-job", SchemaVersion, telemetry.BuildStamp(), req)
}

// totalFor is the number of progress units a request will produce.
func totalFor(req JobRequest) int {
	switch req.Kind {
	case KindExperiment:
		return len(req.Experiments)
	case KindSweep:
		s := req.Sweep
		return len(s.TSVs) * len(s.PadFractions) * (1 + len(s.ConverterCount))
	default:
		return 1
	}
}

// Submit normalizes, validates, admits and enqueues a request. It
// returns ErrDraining during shutdown, an *OverloadError when the queue
// is full, or the queued job. The job gets a freshly minted trace
// context; use SubmitTrace to continue a caller's trace instead.
func (m *Manager) Submit(req JobRequest) (*Job, error) {
	return m.SubmitTrace(req, telemetry.TraceContext{})
}

// SubmitTrace is Submit under the caller's trace context (from a
// traceparent header, say): the job's spans join tc's trace with tc's
// span as parent. An invalid tc mints a fresh trace, so every job ends
// up with a trace ID either way.
func (m *Manager) SubmitTrace(req JobRequest, tc telemetry.TraceContext) (*Job, error) {
	req.Normalize()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if m.draining.Load() {
		return nil, ErrDraining
	}
	key, err := jobCacheKey(req)
	if err != nil {
		return nil, err
	}
	if !tc.Valid() {
		tc = telemetry.NewTrace()
	}
	j := &Job{
		req:     req,
		key:     key,
		state:   StateQueued,
		total:   totalFor(req),
		created: time.Now(),
		done:    make(chan struct{}),
		trace:   tc,
	}
	m.mu.Lock()
	j.seq = m.nextSeq
	m.nextSeq++
	m.mu.Unlock()
	j.id = fmt.Sprintf("j%d-%s", j.seq, randomSuffix())

	// The queue-wait span must exist before the channel send: the send is
	// what publishes j to runJob, so anything written after it races.
	j.queueSpan = telemetry.StartSpanTrace("server.queue-wait", tc)
	select {
	case m.queue <- j:
	default:
		j.queueSpan = nil // never ran: don't record a bogus queue-wait
		mRejected.Add(1)
		return nil, &OverloadError{RetryAfter: m.cfg.RetryAfter}
	}
	mQueueDepth.Set(float64(len(m.queue)))
	m.mu.Lock()
	m.jobs[j.id] = j
	m.mu.Unlock()
	m.saveMeta(j)
	mSubmitted.Add(1)
	return j, nil
}

func randomSuffix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists every known job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}

// Result returns the output of a done job (from memory, or the journal
// after a restart).
func (m *Manager) Result(j *Job) ([]byte, error) {
	j.mu.Lock()
	res, state := j.result, j.state
	j.mu.Unlock()
	if state != StateDone {
		return nil, fmt.Errorf("server: job %s is %s", j.id, state)
	}
	if res != nil {
		return res, nil
	}
	if m.journal == nil {
		return nil, fmt.Errorf("server: job %s has no stored result", j.id)
	}
	res, err := m.journal.loadResult(j.id)
	if err != nil {
		return nil, fmt.Errorf("server: job %s result: %v", j.id, err)
	}
	j.mu.Lock()
	j.result = res
	j.mu.Unlock()
	return res, nil
}

// Cancel requests cancellation: a queued job terminates immediately, a
// running one has its context cancelled (the runner then marks it). The
// second return is false for unknown ids.
func (m *Manager) Cancel(id string) (*Job, bool) {
	j, ok := m.Get(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return j, true
	}
	j.cancelled = true
	if j.state == StateQueued {
		j.state = StateCancelled
		j.errMsg = "cancelled before start"
		j.finished = time.Now()
		qs := j.queueSpan
		j.queueSpan = nil
		close(j.done)
		j.mu.Unlock()
		qs.End()
		mCancelled.Add(1)
		m.finalizeStats(j)
		m.saveMeta(j)
		return j, true
	}
	cancel := j.cancel
	j.mu.Unlock()
	// Persist the cancel intent before tripping the context: if the
	// process dies in the window where the runner has not yet marked the
	// job terminal, the journal still says "cancelled" and the next
	// restart finishes the cancellation instead of resuming the job.
	m.saveMeta(j)
	if cancel != nil {
		cancel()
	}
	return j, true
}

// Draining reports whether the manager has stopped admitting jobs.
func (m *Manager) Draining() bool { return m.draining.Load() }

// QueueDepth returns (queued, capacity).
func (m *Manager) QueueDepth() (int, int) { return len(m.queue), cap(m.queue) }

// RunningJobs counts jobs currently executing on a runner.
func (m *Manager) RunningJobs() int {
	n := 0
	for _, j := range m.Jobs() {
		j.mu.Lock()
		if j.state == StateRunning {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Cache returns the manager's content-addressed result cache. A fleet
// coordinator serves this same cache as the shared tier, so worker
// write-throughs and the job engine's per-point lookups see one store.
func (m *Manager) Cache() *rescache.Cache { return m.cache }

// Drain stops admission, finishes every queued and running job, and
// returns when the runners are idle. If ctx expires first, in-flight
// jobs are hard-cancelled (their journal state stays resumable) and
// ctx's error is returned.
func (m *Manager) Drain(ctx context.Context) error {
	m.draining.Store(true)
	m.drainOnce.Do(func() { close(m.drainCh) })
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.cancel()
		<-done
		return ctx.Err()
	}
}

// Close hard-stops the manager: admission off, every running job's
// context cancelled, runners joined. Jobs interrupted mid-run keep their
// non-terminal journal state and resume on the next NewManager with the
// same StateDir.
func (m *Manager) Close() {
	m.draining.Store(true)
	m.drainOnce.Do(func() { close(m.drainCh) })
	m.cancel()
	m.wg.Wait()
}

func (m *Manager) saveMeta(j *Job) {
	if m.journal == nil {
		return
	}
	if err := m.journal.saveMeta(j.persisted()); err != nil {
		telemetry.Event(slog.LevelWarn, "server: journal write failed",
			slog.String("job", j.id), slog.String("error", err.Error()))
	}
}

func (m *Manager) runLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			mQueueDepth.Set(float64(len(m.queue)))
			m.runJob(j)
		case <-m.drainCh:
			// Drain mode: finish whatever is still queued, then exit.
			for {
				select {
				case j := <-m.queue:
					mQueueDepth.Set(float64(len(m.queue)))
					m.runJob(j)
				case <-m.ctx.Done():
					return
				default:
					return
				}
			}
		}
	}
}

func (m *Manager) runJob(j *Job) {
	j.mu.Lock()
	if j.state.Terminal() { // cancelled while queued
		j.mu.Unlock()
		return
	}
	jobCtx, cancel := context.WithCancel(m.ctx)
	defer cancel()
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	qs := j.queueSpan
	j.queueSpan = nil
	tc := j.trace
	scope := telemetry.NewScope(tc)
	j.scope = scope
	j.cpu0 = telemetry.ProcessCPUSeconds()
	j.alloc0 = totalAlloc()
	queueWait := j.started.Sub(j.created).Seconds()
	j.mu.Unlock()
	qs.End()
	scope.Histogram("job_queue_wait_seconds").Observe(queueWait)
	jobCtx = telemetry.WithScope(jobCtx, scope)
	sp := telemetry.StartSpanTrace("server.job."+j.req.Kind, tc)
	m.saveMeta(j)
	// Atomic up/down: with MaxInFlight > 1 runners race here, and a
	// Set(Value()+1) pair can lose an update and leave the gauge non-zero
	// after the pool drains.
	mRunning.Add(1)
	defer mRunning.Add(-1)
	if m.cfg.testJobStart != nil {
		m.cfg.testJobStart(jobCtx, j)
	}

	val, hit, err := m.cache.Do(j.key, func() ([]byte, error) {
		return m.compute(jobCtx, j)
	})
	sp.End()

	j.mu.Lock()
	if j.ckpt != nil {
		j.ckpt.Close()
		j.ckpt = nil
	}
	j.mu.Unlock()

	switch {
	case err == nil:
		if hit {
			j.mu.Lock()
			j.cacheHit = true
			j.mu.Unlock()
			mJobHits.Add(1)
		}
		j.completed.Store(int64(j.total))
		if m.journal != nil {
			if werr := m.journal.saveResult(j.id, val); werr != nil {
				telemetry.Event(slog.LevelWarn, "server: result write failed",
					slog.String("job", j.id), slog.String("error", werr.Error()))
			}
		}
		m.finish(j, StateDone, val, "")
		mCompleted.Add(1)
	case j.userCancelled():
		m.finish(j, StateCancelled, nil, "cancelled")
		mCancelled.Add(1)
	case m.ctx.Err() != nil:
		// Shutdown interrupted the job: leave the journal non-terminal so
		// the next manager resumes it from its checkpoint. In memory it
		// goes back to queued for accurate status until the process exits.
		j.mu.Lock()
		j.state = StateQueued
		j.cancel = nil
		j.scope = nil
		j.cpu0, j.alloc0 = 0, 0
		j.mu.Unlock()
	default:
		m.finish(j, StateFailed, nil, err.Error())
		mFailed.Add(1)
	}
}

func (m *Manager) finish(j *Job, state JobState, result []byte, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.finished = time.Now()
	j.cancel = nil
	close(j.done)
	j.mu.Unlock()
	m.finalizeStats(j)
	m.saveMeta(j)
}

// newStudy builds the deterministic study a request asks for — the same
// construction as cmd/vsexplore's flags, so rendered output matches the
// CLI byte for byte.
func newStudy(req JobRequest) *core.Study {
	s := core.NewStudy()
	if req.Coarse {
		s.Coarse()
	}
	s.Workers = req.Workers
	s.Seed = req.Seed
	return s
}

func (m *Manager) compute(ctx context.Context, j *Job) ([]byte, error) {
	// Non-shardable kinds go to the fleet whole: one worker runs the job
	// through its own engine (and its own job cache, so re-forwarding is
	// free). ErrNoWorkers degrades to computing here.
	if d := m.cfg.Dispatcher; d != nil && j.req.Kind != KindSweep {
		out, err := d.ForwardJob(ctx, DispatchJob{ID: j.id, Trace: j.trace}, j.req)
		switch {
		case err == nil:
			mForwarded.Add(1)
			return out, nil
		case errors.Is(err, ErrNoWorkers):
			telemetry.Event(slog.LevelWarn, "server: no workers, computing locally",
				slog.String("job", j.id))
		case ctx.Err() != nil:
			return nil, ctx.Err()
		default:
			return nil, err
		}
	}
	switch j.req.Kind {
	case KindExperiment:
		return m.computeExperiments(ctx, j)
	case KindEMMC:
		return m.computeEMMC(ctx, j)
	case KindSweep:
		return m.computeSweep(ctx, j)
	default:
		return nil, fmt.Errorf("server: unknown kind %q", j.req.Kind)
	}
}

// computeExperiments runs the selected drivers in order and concatenates
// their renderings exactly as vsexplore prints them (each text rendering
// followed by a blank line; CSV renderings back to back). Cancellation
// is honored between drivers.
func (m *Manager) computeExperiments(ctx context.Context, j *Job) ([]byte, error) {
	s := newStudy(j.req)
	s.Trace = telemetry.TraceContextFrom(ctx)
	var buf bytes.Buffer
	for _, name := range j.req.Experiments {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out, err := core.RunExperiment(s, name, j.req.CSV)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		buf.WriteString(out)
		if !j.req.CSV {
			buf.WriteByte('\n')
		}
		j.completed.Add(1)
		m.saveMeta(j)
	}
	return buf.Bytes(), nil
}

func (m *Manager) computeEMMC(ctx context.Context, j *Job) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := newStudy(j.req)
	s.Trace = telemetry.TraceContextFrom(ctx)
	r, err := s.ExtEMMonteCarlo(j.req.Trials)
	if err != nil {
		return nil, err
	}
	j.completed.Store(1)
	return []byte(core.RenderExtEMMonteCarlo(r)), nil
}

// buildSpace maps a normalized sweep request onto an explore.Space.
func buildSpace(req JobRequest) explore.Space {
	spec := req.Sweep
	sp := explore.DefaultSpace()
	sp.Layers = spec.Layers
	sp.Imbalance = *spec.Imbalance
	sp.PadFractions = append([]float64(nil), spec.PadFractions...)
	sp.ConverterCount = append([]int(nil), spec.ConverterCount...)
	sp.TSVs = sp.TSVs[:0]
	for _, name := range spec.TSVs {
		sp.TSVs = append(sp.TSVs, tsvTopologies[name]())
	}
	sp.Params.GridNx, sp.Params.GridNy = spec.GridNx, spec.GridNy
	sp.Workers = req.Workers
	return sp
}

// pointKey is the content address of one design point's raw metrics: the
// full solver-affecting PDN fingerprint plus the evaluation conditions.
func pointKey(sp explore.Space, d explore.Design) (string, error) {
	cfg := pdngrid.Config{
		Kind:              d.Kind,
		Layers:            sp.Layers,
		Chip:              sp.Chip,
		Params:            sp.Params,
		TSV:               d.TSV,
		PadPowerFraction:  d.PadPowerFraction,
		ConvertersPerCore: d.ConvertersPerCore,
		Converter:         sp.Converter,
		ForceFreshSolve:   sp.ForceFreshSolve,
	}
	return rescache.Key("sweep-point", SchemaVersion, telemetry.BuildStamp(), map[string]any{
		"pdn":       cfg.CacheFingerprint(),
		"imbalance": sp.Imbalance,
		"em_tsv":    sp.EMTsv,
		"em_c4":     sp.EMC4,
	})
}

// computeSweep evaluates the design space with two layers of replay under
// the whole-job cache: the job's own journal checkpoint (resume after a
// restart) and the per-point result cache (shared across jobs that touch
// the same designs). Fresh points are checkpointed and cached as they
// complete; replayed points are bit-identical to recomputation because
// metrics round-trip losslessly through canonical JSON.
func (m *Manager) computeSweep(ctx context.Context, j *Job) ([]byte, error) {
	sp := buildSpace(j.req)
	designs := sp.Designs()
	keys := make([]string, len(designs))
	for i, d := range designs {
		k, err := pointKey(sp, d)
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}

	scope := telemetry.ScopeFrom(ctx)
	pre := map[int]*explore.Metrics{}
	if m.journal != nil {
		ck, err := m.journal.loadCheckpoint(j.id)
		if err != nil {
			return nil, err
		}
		for i, raw := range ck {
			if i < 0 || i >= len(designs) {
				continue
			}
			var mt explore.Metrics
			if json.Unmarshal(raw, &mt) == nil {
				pre[i] = &mt
			}
		}
		scope.Counter("job_ckpt_points_total").Add(int64(len(pre)))
	}
	for i, k := range keys {
		if _, ok := pre[i]; ok {
			continue
		}
		if b, ok := m.cache.Get(k); ok {
			var mt explore.Metrics
			if json.Unmarshal(b, &mt) == nil {
				pre[i] = &mt
				scope.Counter("job_rescache_point_hits_total").Add(1)
				continue
			}
		}
		scope.Counter("job_rescache_point_misses_total").Add(1)
	}
	if n := len(pre); n > 0 {
		mReplayed.Add(int64(n))
	}

	// The checkpoint stream opens before any evaluation — local or
	// remote — so dispatched deliveries journal exactly like local points
	// and a coordinator crash mid-dispatch resumes for free.
	var ckptMu sync.Mutex
	if m.journal != nil {
		f, err := m.journal.openCheckpoint(j.id)
		if err != nil {
			return nil, err
		}
		j.mu.Lock()
		j.ckpt = f
		j.mu.Unlock()
	}
	checkpoint := func(i int, b []byte) {
		if m.journal == nil {
			return
		}
		line, _ := json.Marshal(ckptLine{I: i, M: b})
		line = append(line, '\n')
		ckptMu.Lock()
		j.mu.Lock()
		f := j.ckpt
		j.mu.Unlock()
		if f != nil {
			if _, werr := f.Write(line); werr != nil {
				telemetry.Event(slog.LevelWarn, "server: checkpoint write failed",
					slog.String("job", j.id), slog.String("error", werr.Error()))
			}
		}
		ckptMu.Unlock()
	}

	// Dispatch phase: shard the points nobody has computed yet across the
	// fleet. Deliveries land in the per-point cache, the checkpoint stream
	// and pre — indistinguishable from replayed local work. A dispatcher
	// error (no workers, every worker died mid-job) leaves the leftovers
	// to the local merge below, which computes whatever pre is missing.
	if m.cfg.Dispatcher != nil {
		var missing []RemotePoint
		for i := range designs {
			if _, ok := pre[i]; !ok {
				missing = append(missing, RemotePoint{Index: i, Key: keys[i]})
			}
		}
		if len(missing) > 0 {
			var preMu sync.Mutex
			deliver := func(p RemotePoint, metrics []byte) {
				if p.Index < 0 || p.Index >= len(designs) {
					return
				}
				var mt explore.Metrics
				if json.Unmarshal(metrics, &mt) != nil {
					return
				}
				m.cache.Put(p.Key, metrics)
				checkpoint(p.Index, metrics)
				preMu.Lock()
				if _, dup := pre[p.Index]; !dup {
					pre[p.Index] = &mt
					j.completed.Add(1)
					mDispatched.Add(1)
					scope.Counter("job_points_dispatched_total").Add(1)
				}
				preMu.Unlock()
			}
			err := m.cfg.Dispatcher.EvaluatePoints(ctx,
				DispatchJob{ID: j.id, Trace: j.trace}, j.req, missing, deliver)
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
				telemetry.Event(slog.LevelWarn, "server: dispatch incomplete, computing leftovers locally",
					slog.String("job", j.id), slog.String("error", err.Error()))
			}
		}
	}

	// The merge below re-counts every point (replayed and dispatched ones
	// included), so reset progress rather than double-count.
	j.completed.Store(0)

	sp.Precomputed = pre
	sp.OnPoint = func(i int, mt *explore.Metrics) {
		j.completed.Add(1)
		if _, replayed := pre[i]; !replayed {
			b, err := rescache.CanonicalJSON(mt)
			if err == nil {
				m.cache.Put(keys[i], b)
				checkpoint(i, b)
			}
		}
		if m.cfg.testOnPoint != nil {
			m.cfg.testOnPoint(j.id, i)
		}
	}

	res, err := sp.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return rescache.CanonicalJSON(res)
}

// EvaluateDesign evaluates a single design synchronously through the
// per-point cache (with singleflight dedup of concurrent identical
// evaluations) and returns the raw metrics in canonical JSON. The
// context's trace spans annotate the solve; it does not affect the
// result bytes.
func (m *Manager) EvaluateDesign(ctx context.Context, sp explore.Space, d explore.Design) ([]byte, error) {
	key, err := pointKey(sp, d)
	if err != nil {
		return nil, err
	}
	val, _, err := m.cache.Do(key, func() ([]byte, error) {
		mt, err := sp.EvaluateContext(ctx, d)
		if err != nil {
			return nil, err
		}
		return rescache.CanonicalJSON(mt)
	})
	return val, err
}
