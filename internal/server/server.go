package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"voltstack/internal/explore"
	"voltstack/internal/pdngrid"
	"voltstack/internal/telemetry"
)

var (
	mHTTPRequests = telemetry.NewCounter("server_requests_total")
	mHTTPSeconds  = telemetry.NewHistogram("server_request_seconds")
)

// NewHandler mounts the v1 API and the telemetry observability endpoints
// (/metrics /healthz /statusz /debug/pprof) on one mux. The concrete mux
// is returned so embedders (the fleet coordinator and worker agents) can
// mount additional routes on the same listener.
func NewHandler(m *Manager) *http.ServeMux {
	mux := telemetry.NewObservabilityMux()
	mux.HandleFunc("POST /v1/jobs", instrument(m, "submit", handleSubmit))
	mux.HandleFunc("GET /v1/jobs", instrument(m, "list", handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", instrument(m, "status", handleStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/result", instrument(m, "result", handleResult))
	mux.HandleFunc("GET /v1/jobs/{id}/stats", instrument(m, "stats", handleStats))
	mux.HandleFunc("DELETE /v1/jobs/{id}", instrument(m, "cancel", handleCancel))
	mux.HandleFunc("GET /v1/designs:evaluate", instrument(m, "evaluate", handleEvaluate))
	return mux
}

// instrument wraps a handler with the request metrics and, when the
// request carries a valid W3C traceparent header, joins the caller's
// trace: the trace context lands in the request context (so Submit and
// the synchronous evaluate path propagate it into the solvers) and the
// whole handler invocation records as an "http.<name>" span. Requests
// without the header — or with tracing disabled — pay nothing.
func instrument(m *Manager, name string, h func(*Manager, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := telemetry.Now()
		mHTTPRequests.Add(1)
		if tp := r.Header.Get("traceparent"); tp != "" {
			if tc, err := telemetry.ParseTraceparent(tp); err == nil {
				r = r.WithContext(telemetry.WithTraceContext(r.Context(), tc))
				if sp := telemetry.StartSpanTrace("http."+name, tc); sp != nil {
					defer sp.End()
				}
			}
		}
		h(m, w, r)
		mHTTPSeconds.Since(t0)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func handleSubmit(m *Manager, w http.ResponseWriter, r *http.Request) {
	req, err := DecodeJobRequest(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	j, err := m.SubmitTrace(*req, telemetry.TraceContextFrom(r.Context()))
	if err != nil {
		var overload *OverloadError
		switch {
		case errors.As(err, &overload):
			secs := int(overload.RetryAfter.Round(time.Second).Seconds())
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, "%s", err)
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, "%s", err)
		default:
			writeError(w, http.StatusBadRequest, "%s", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func handleList(m *Manager, w http.ResponseWriter, _ *http.Request) {
	jobs := m.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func handleStatus(m *Manager, w http.ResponseWriter, r *http.Request) {
	j, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func handleResult(m *Manager, w http.ResponseWriter, r *http.Request) {
	j, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	st := j.Status()
	if st.State != StateDone {
		code := http.StatusConflict
		msg := fmt.Sprintf("job %s is %s, result not available", st.ID, st.State)
		if st.State == StateFailed {
			msg = fmt.Sprintf("job %s failed: %s", st.ID, st.Error)
		}
		writeError(w, code, "%s", msg)
		return
	}
	res, err := m.Result(j)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%s", err)
		return
	}
	if st.Kind == KindSweep {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.WriteHeader(http.StatusOK)
	w.Write(res)
}

// handleStats serves GET /v1/jobs/{id}/stats: the job's resource-
// attribution document — live while it runs, frozen (and byte-stable
// across restarts) once terminal.
func handleStats(m *Manager, w http.ResponseWriter, r *http.Request) {
	j, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	b, err := m.Stats(j)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%s", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

func handleCancel(m *Manager, w http.ResponseWriter, r *http.Request) {
	j, ok := m.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvaluate serves GET /v1/designs:evaluate — one design point,
// synchronously, through the per-point cache. Query parameters:
//
//	kind          regular | vs (default regular)
//	layers        stack depth (default 8)
//	tsv           dense | sparse | few (default dense)
//	pad_fraction  power-pad fraction in (0,1] (default 0.5)
//	converters    converters per core, V-S only (default 4)
//	imbalance     workload point in [0,1] (default 0.65)
//	grid          mesh resolution NxN (default 16)
//	workers       evaluation concurrency (default GOMAXPROCS)
func handleEvaluate(m *Manager, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	bad := func(field, format string, args ...any) {
		writeError(w, http.StatusBadRequest, "%s", fieldErr(field, format, args...))
	}

	kind := pdngrid.Regular
	switch v := q.Get("kind"); v {
	case "", "regular":
	case "vs", "voltage-stacked":
		kind = pdngrid.VoltageStacked
	default:
		bad("kind", "unknown kind %q (regular, vs)", v)
		return
	}
	layers, err := intParam(q.Get("layers"), 8)
	if err != nil || layers < 2 || layers > 16 {
		bad("layers", "must be an integer in [2, 16]")
		return
	}
	tsvName := q.Get("tsv")
	if tsvName == "" {
		tsvName = "dense"
	}
	mkTSV, ok := tsvTopologies[tsvName]
	if !ok {
		bad("tsv", "unknown TSV topology %q (have: dense sparse few)", tsvName)
		return
	}
	padFrac, err := floatParam(q.Get("pad_fraction"), 0.5)
	if err != nil || !isFinite(padFrac) || padFrac <= 0 || padFrac > 1 {
		bad("pad_fraction", "must be a finite value in (0, 1]")
		return
	}
	converters, err := intParam(q.Get("converters"), 4)
	if err != nil || converters < 1 || converters > 16 {
		bad("converters", "must be an integer in [1, 16]")
		return
	}
	imbalance, err := floatParam(q.Get("imbalance"), 0.65)
	if err != nil || !isFinite(imbalance) || imbalance < 0 || imbalance > 1 {
		bad("imbalance", "must be a finite value in [0, 1]")
		return
	}
	grid, err := intParam(q.Get("grid"), 16)
	if err != nil || grid < 4 || grid > 256 {
		bad("grid", "must be an integer in [4, 256]")
		return
	}
	workers, err := intParam(q.Get("workers"), 0)
	if err != nil || workers < 0 || workers > 256 {
		bad("workers", "must be an integer in [0, 256]")
		return
	}

	sp := explore.DefaultSpace()
	sp.Layers = layers
	sp.Imbalance = imbalance
	sp.Params.GridNx, sp.Params.GridNy = grid, grid
	sp.Workers = workers
	d := explore.Design{Kind: kind, TSV: mkTSV(), PadPowerFraction: padFrac}
	if kind == pdngrid.VoltageStacked {
		d.ConvertersPerCore = converters
	}
	out, err := m.EvaluateDesign(r.Context(), sp, d)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "evaluate: %s", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func floatParam(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}

// Server couples a Manager with a listening HTTP server.
type Server struct {
	Manager *Manager
	ln      net.Listener
	srv     *http.Server
}

// Start listens on addr (":0" for an ephemeral port) and serves the API.
func Start(addr string, m *Manager) (*Server, error) {
	return StartHandler(addr, m, NewHandler(m))
}

// StartHandler is Start with a caller-built handler — typically the
// NewHandler mux with fleet routes mounted on top — so one listener
// serves the job API and the fleet protocol together.
func StartHandler(addr string, m *Manager, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h}
	s := &Server{Manager: m, ln: ln, srv: srv}
	go srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the base URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Drain performs a graceful shutdown: admission off (new submissions get
// 503), queued and running jobs finish, then the HTTP server closes. If
// ctx expires first, in-flight jobs are hard-cancelled but stay
// resumable in the journal.
func (s *Server) Drain(ctx context.Context) error {
	err := s.Manager.Drain(ctx)
	if herr := s.srv.Shutdown(ctx); err == nil && herr != nil && !errors.Is(herr, context.Canceled) && !errors.Is(herr, context.DeadlineExceeded) {
		err = herr
	}
	return err
}

// Close hard-stops the server and manager, simulating a crash as far as
// job state is concerned: running jobs keep their resumable journal
// entries and checkpoints.
func (s *Server) Close() {
	s.srv.Close()
	s.Manager.Close()
}
