package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"voltstack/internal/explore"
	"voltstack/internal/pdngrid"
	"voltstack/internal/rescache"
)

func sweepRequest() JobRequest {
	imb := 0.65
	return JobRequest{
		Kind: KindSweep,
		Sweep: &SweepSpec{
			Layers:         2,
			Imbalance:      &imb,
			PadFractions:   []float64{0.5},
			ConverterCount: []int{2, 4},
			TSVs:           []string{"dense"},
			GridNx:         8,
			GridNy:         8,
		},
		Workers: 1,
	}
}

func TestNormalizeFillsDefaults(t *testing.T) {
	spelled := JobRequest{
		Kind: KindSweep,
		Seed: 1,
		Sweep: &SweepSpec{
			Layers:         8,
			PadFractions:   []float64{0.25, 0.5, 1.0},
			ConverterCount: []int{2, 4, 6, 8},
			TSVs:           []string{"dense", "sparse", "few"},
			GridNx:         32,
			GridNy:         32,
		},
	}
	imb := 0.65
	spelled.Sweep.Imbalance = &imb
	defaulted := JobRequest{Kind: "Sweep", Sweep: &SweepSpec{}}
	defaulted.Normalize()
	spelled.Normalize()
	for _, r := range []*JobRequest{&spelled, &defaulted} {
		if err := r.Validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
	}
	kSpelled, err := jobCacheKey(spelled)
	if err != nil {
		t.Fatal(err)
	}
	kDefaulted, err := jobCacheKey(defaulted)
	if err != nil {
		t.Fatal(err)
	}
	if kSpelled != kDefaulted {
		t.Errorf("defaulted and spelled-out requests hash differently:\n%s\n%s", kDefaulted, kSpelled)
	}
}

func TestJobCacheKeyIgnoresWorkers(t *testing.T) {
	a := JobRequest{Kind: KindExperiment, Experiments: []string{"table1"}, Workers: 1}
	b := JobRequest{Kind: KindExperiment, Experiments: []string{"table1"}, Workers: 8}
	a.Normalize()
	b.Normalize()
	ka, err := jobCacheKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := jobCacheKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Error("worker count changed the cache key")
	}
	c := a
	c.Seed = 7
	kc, err := jobCacheKey(c)
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Error("seed did not change the cache key")
	}
}

func TestValidateFieldErrors(t *testing.T) {
	imbBad := 1.5
	cases := []struct {
		name  string
		req   JobRequest
		field string
	}{
		{"no kind", JobRequest{}, "kind"},
		{"bad kind", JobRequest{Kind: "zap"}, "kind"},
		{"no experiments", JobRequest{Kind: KindExperiment}, "experiments"},
		{"unknown experiment", JobRequest{Kind: KindExperiment, Experiments: []string{"nope"}}, "experiments"},
		{"csv-less experiment", JobRequest{Kind: KindExperiment, Experiments: []string{"thermal"}, CSV: true}, "csv"},
		{"experiment with sweep", JobRequest{Kind: KindExperiment, Experiments: []string{"table1"}, Sweep: &SweepSpec{}}, "sweep"},
		{"sweep without spec", JobRequest{Kind: KindSweep}, "sweep"},
		{"sweep layers", JobRequest{Kind: KindSweep, Sweep: &SweepSpec{Layers: 99}}, "sweep.layers"},
		{"sweep imbalance", JobRequest{Kind: KindSweep, Sweep: &SweepSpec{Imbalance: &imbBad}}, "sweep.imbalance"},
		{"sweep pad fraction", JobRequest{Kind: KindSweep, Sweep: &SweepSpec{PadFractions: []float64{2}}}, "sweep.pad_fractions"},
		{"sweep converters", JobRequest{Kind: KindSweep, Sweep: &SweepSpec{ConverterCount: []int{0}}}, "sweep.converter_count"},
		{"sweep tsv", JobRequest{Kind: KindSweep, Sweep: &SweepSpec{TSVs: []string{"coax"}}}, "sweep.tsvs"},
		{"sweep dup tsv", JobRequest{Kind: KindSweep, Sweep: &SweepSpec{TSVs: []string{"dense", "dense"}}}, "sweep.tsvs"},
		{"sweep grid", JobRequest{Kind: KindSweep, Sweep: &SweepSpec{GridNx: 2}}, "sweep.grid_nx"},
		{"em-mc trials", JobRequest{Kind: KindEMMC}, "trials"},
		{"workers", JobRequest{Kind: KindEMMC, Trials: 10, Workers: -1}, "workers"},
		{"seed", JobRequest{Kind: KindEMMC, Trials: 10, Seed: -3}, "seed"},
	}
	for _, tc := range cases {
		req := tc.req
		req.Normalize()
		err := req.Validate()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a FieldError", tc.name, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: error names field %q, want %q (%v)", tc.name, fe.Field, tc.field, err)
		}
	}
}

func TestDecodeJobRequestStrict(t *testing.T) {
	for _, tc := range []struct{ name, body, wantSub string }{
		{"garbage", "not json", "invalid job request"},
		{"empty", "", "empty body"},
		{"unknown field", `{"kind":"em-mc","trials":1,"zap":true}`, "unknown field"},
		{"trailing data", `{"kind":"em-mc","trials":1} {}`, "trailing data"},
		{"wrong type", `{"kind":3}`, "invalid job request"},
		{"huge number", `{"kind":"sweep","sweep":{"imbalance":1e999}}`, "invalid job request"},
	} {
		_, err := DecodeJobRequest(strings.NewReader(tc.body))
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
	req, err := DecodeJobRequest(strings.NewReader(`{"kind":"experiment","experiments":["TABLE1"]}`))
	if err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if req.Experiments[0] != "table1" || req.Seed != 1 {
		t.Errorf("request not normalized: %+v", req)
	}
}

// Acceptance (d): submissions past the admission bound get 429 while
// admitted jobs keep running, and a drain finishes the backlog while new
// submissions get 503.
func TestAdmissionControlAndDrain(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	mgr, err := NewManager(Config{
		MaxInFlight: 1,
		QueueDepth:  1,
		RetryAfter:  3 * time.Second,
		testJobStart: func(ctx context.Context, j *Job) {
			started <- j.ID()
			select {
			case <-release:
			case <-ctx.Done():
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := Start("127.0.0.1:0", mgr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Base: srv.URL(), Poll: 10 * time.Millisecond}
	ctx := context.Background()

	// Distinct seeds make distinct jobs (no job-level dedup).
	mk := func(seed int64) JobRequest {
		return JobRequest{Kind: KindExperiment, Experiments: []string{"table1"}, Seed: seed}
	}
	stA, err := c.Submit(ctx, mk(2))
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	<-started // A occupies the only runner
	stB, err := c.Submit(ctx, mk(3))
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}
	// Queue (depth 1) now holds B: the next submission must bounce.
	_, err = c.Submit(ctx, mk(4))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit C: err = %v, want 429", err)
	}
	if apiErr.RetryAfter < time.Second {
		t.Errorf("429 carried Retry-After %v, want >= 1s", apiErr.RetryAfter)
	}

	drained := make(chan error, 1)
	go func() { drained <- srv.Manager.Drain(context.Background()) }()
	for !mgr.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Submit(ctx, mk(5)); err == nil {
		t.Error("submission during drain succeeded, want 503")
	} else if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission during drain: err = %v, want 503", err)
	}

	close(release) // let A (and then B) finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{stA.ID, stB.ID} {
		st, err := c.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Errorf("after drain, job %s is %s, want done", id, st.State)
		}
	}
}

func TestCancel(t *testing.T) {
	entered := make(chan struct{}, 2)
	mgr, err := NewManager(Config{
		MaxInFlight: 1,
		QueueDepth:  2,
		testJobStart: func(ctx context.Context, j *Job) {
			entered <- struct{}{}
			<-ctx.Done() // hold the job until cancelled
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	running, err := mgr.Submit(JobRequest{Kind: KindExperiment, Experiments: []string{"table1"}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	queued, err := mgr.Submit(JobRequest{Kind: KindExperiment, Experiments: []string{"table1"}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if j, ok := mgr.Cancel(queued.ID()); !ok || j.Status().State != StateCancelled {
		t.Errorf("queued job after cancel: %+v", j.Status())
	}
	if _, ok := mgr.Cancel(running.ID()); !ok {
		t.Fatal("running job unknown to Cancel")
	}
	select {
	case <-running.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job never terminated")
	}
	if st := running.Status(); st.State != StateCancelled {
		t.Errorf("running job after cancel: state %s, want cancelled", st.State)
	}
	if _, ok := mgr.Cancel("j999-nope"); ok {
		t.Error("Cancel of unknown id reported ok")
	}
}

func TestHTTPStatusCodes(t *testing.T) {
	mgr, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := Start("127.0.0.1:0", mgr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Post(srv.URL()+"/v1/jobs", "application/json", strings.NewReader(`{"kind":"zap"}`))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(eb.Error, "kind") {
		t.Errorf("bad submit: status %d, body %+v", resp.StatusCode, eb)
	}

	c := &Client{Base: srv.URL()}
	ctx := context.Background()
	var apiErr *APIError
	if _, err := c.Status(ctx, "jX-missing"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("status of unknown job: %v, want 404", err)
	}
	if _, err := c.Result(ctx, "jX-missing"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("result of unknown job: %v, want 404", err)
	}

	// The observability endpoints share the listener.
	hresp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", hresp.StatusCode)
	}
}

func TestResultConflictBeforeDone(t *testing.T) {
	release := make(chan struct{})
	mgr, err := NewManager(Config{
		MaxInFlight: 1,
		testJobStart: func(ctx context.Context, j *Job) {
			select {
			case <-release:
			case <-ctx.Done():
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := Start("127.0.0.1:0", mgr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Base: srv.URL(), Poll: 10 * time.Millisecond}
	ctx := context.Background()

	st, err := c.Submit(ctx, JobRequest{Kind: KindExperiment, Experiments: []string{"table1"}})
	if err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	if _, err := c.Result(ctx, st.ID); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Errorf("result before done: %v, want 409", err)
	}
	close(release)
	if st, err = c.Wait(ctx, st.ID); err != nil || st.State != StateDone {
		t.Fatalf("wait: %v (state %s)", err, st.State)
	}
	if _, err := c.Result(ctx, st.ID); err != nil {
		t.Errorf("result after done: %v", err)
	}
}

// GET /v1/designs:evaluate must return exactly the canonical JSON of a
// direct explore.Space.Evaluate, and serve repeats from the cache.
func TestEvaluateEndpoint(t *testing.T) {
	cache, err := rescache.New(rescache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(Config{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := Start("127.0.0.1:0", mgr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const query = "/v1/designs:evaluate?kind=vs&layers=2&tsv=dense&pad_fraction=0.5&converters=2&imbalance=0.65&grid=8"
	get := func() (int, []byte) {
		resp, err := http.Get(srv.URL() + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}
	code, body := get()
	if code != http.StatusOK {
		t.Fatalf("evaluate status %d: %s", code, body)
	}

	sp := explore.DefaultSpace()
	sp.Layers = 2
	sp.Imbalance = 0.65
	sp.Params.GridNx, sp.Params.GridNy = 8, 8
	d := explore.Design{Kind: pdngrid.VoltageStacked, TSV: pdngrid.DenseTSV(), PadPowerFraction: 0.5, ConvertersPerCore: 2}
	m, err := sp.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rescache.CanonicalJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(want) {
		t.Errorf("evaluate endpoint:\n got %s\nwant %s", body, want)
	}

	if n := cache.Len(); n != 1 {
		t.Errorf("cache holds %d entries after evaluate, want 1", n)
	}
	code2, body2 := get()
	if code2 != http.StatusOK || string(body2) != string(body) {
		t.Errorf("repeat evaluate differs: status %d", code2)
	}
	if n := cache.Len(); n != 1 {
		t.Errorf("repeat evaluate grew the cache to %d entries", n)
	}

	resp, err := http.Get(srv.URL() + "/v1/designs:evaluate?tsv=coax")
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(eb.Error, "tsv") {
		t.Errorf("bad tsv param: status %d, body %+v", resp.StatusCode, eb)
	}
}

// The progress counter must track sweep points as they complete.
func TestSweepProgressCounter(t *testing.T) {
	var seen atomic.Int64
	mgr, err := NewManager(Config{
		testOnPoint: func(string, int) { seen.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	j, err := mgr.Submit(sweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("sweep job: %s (%s)", st.State, st.Error)
	}
	if st.Total != 3 || st.Completed != 3 {
		t.Errorf("progress %d/%d, want 3/3", st.Completed, st.Total)
	}
	if got := seen.Load(); got != 3 {
		t.Errorf("point hook fired %d times, want 3", got)
	}
}
