package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"runtime"
	"time"

	"voltstack/internal/telemetry"
	"voltstack/internal/telemetry/history"
)

// JobStats is the per-job resource-attribution document served by
// GET /v1/jobs/{id}/stats: wall/CPU time and allocations charged to the
// job, queue wait, the job-scoped instrument registry (solver iterations,
// residuals, batch-lane occupancy, point cache hits, …) and the exemplars
// linking the job's slowest solves back to (trace ID, span ID) evidence.
//
// While the job runs the document is a live snapshot (Final=false); once
// the job reaches a terminal state the document is frozen, journaled next
// to the job's result, and served byte-identically from then on — across
// daemon restarts too.
type JobStats struct {
	ID      string   `json:"id"`
	State   JobState `json:"state"`
	Kind    string   `json:"kind"`
	TraceID string   `json:"trace_id,omitempty"`
	// Final marks the frozen terminal document; false means a live
	// snapshot of a queued or running job.
	Final    bool `json:"final"`
	CacheHit bool `json:"cache_hit,omitempty"`
	Resumed  bool `json:"resumed,omitempty"`

	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	WallSeconds      float64 `json:"wall_seconds"`
	// CPUSeconds is the process CPU-time delta over the job's run. With
	// MaxInFlight=1 it is exactly the job's CPU cost; with concurrent
	// jobs it over-attributes shared process time to each.
	CPUSeconds float64 `json:"cpu_seconds"`
	// AllocBytes is the process heap-allocation delta over the job's run,
	// with the same concurrency caveat as CPUSeconds.
	AllocBytes uint64 `json:"alloc_bytes"`

	Registry  telemetry.RegistrySnapshot `json:"registry"`
	Exemplars []telemetry.Exemplar       `json:"exemplars,omitempty"`
}

// statsDoc assembles the job's stats document. Callers hold no lock; the
// job's own mutex is taken for the field snapshot.
func (m *Manager) statsDoc(j *Job, final bool) JobStats {
	j.mu.Lock()
	doc := JobStats{
		ID:       j.id,
		State:    j.state,
		Kind:     j.req.Kind,
		TraceID:  j.trace.TraceIDString(),
		Final:    final,
		CacheHit: j.cacheHit,
		Resumed:  j.resumed,
	}
	started, created, finished := j.started, j.created, j.finished
	cpu0, alloc0 := j.cpu0, j.alloc0
	scope := j.scope
	j.mu.Unlock()

	if !started.IsZero() && !created.IsZero() {
		doc.QueueWaitSeconds = started.Sub(created).Seconds()
	}
	switch {
	case started.IsZero():
		// Still queued (or cancelled before start): no run attribution.
	case finished.IsZero():
		doc.WallSeconds = time.Since(started).Seconds()
		doc.CPUSeconds = cpuSince(cpu0)
		doc.AllocBytes = allocSince(alloc0)
	default:
		doc.WallSeconds = finished.Sub(started).Seconds()
		doc.CPUSeconds = cpuSince(cpu0)
		doc.AllocBytes = allocSince(alloc0)
	}
	doc.Registry = scope.Registry().Snapshot()
	doc.Exemplars = scope.Exemplars().Snapshot()
	return doc
}

func cpuSince(cpu0 float64) float64 {
	if cpu0 <= 0 {
		return 0
	}
	if d := telemetry.ProcessCPUSeconds() - cpu0; d > 0 {
		return d
	}
	return 0
}

func allocSince(alloc0 uint64) uint64 {
	if alloc0 == 0 {
		return 0
	}
	if a := totalAlloc(); a > alloc0 {
		return a - alloc0
	}
	return 0
}

// totalAlloc returns the process's cumulative heap allocation counter.
func totalAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// finalizeStats freezes the job's stats document at a terminal
// transition and journals it so the exact bytes survive a restart.
func (m *Manager) finalizeStats(j *Job) {
	doc := m.statsDoc(j, true)
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return
	}
	b = append(b, '\n')
	j.mu.Lock()
	j.stats = b
	j.mu.Unlock()
	if m.journal != nil {
		if werr := m.journal.saveStats(j.id, b); werr != nil {
			telemetry.Event(slog.LevelWarn, "server: stats write failed",
				slog.String("job", j.id), slog.String("error", werr.Error()))
		}
	}
	m.appendHistory(j, doc)
}

// appendHistory writes the terminal job's snapshot into the persistent
// history store: run attribution plus the job-scoped solver-health and
// solver-effort instruments, flattened to the store's numeric schema.
func (m *Manager) appendHistory(j *Job, doc JobStats) {
	if m.cfg.History == nil {
		return
	}
	vals := map[string]float64{
		"queue_wait_seconds": doc.QueueWaitSeconds,
		"wall_seconds":       doc.WallSeconds,
		"cpu_seconds":        doc.CPUSeconds,
		"alloc_bytes":        float64(doc.AllocBytes),
	}
	for name, v := range doc.Registry.Counters {
		vals[name] = float64(v)
	}
	for name, v := range doc.Registry.Gauges {
		vals[name] = v
	}
	err := m.cfg.History.Append(history.Record{
		T:      time.Now().UnixMilli(),
		Kind:   "job",
		ID:     j.id,
		Values: vals,
	})
	if err != nil {
		telemetry.Event(slog.LevelWarn, "server: history append failed",
			slog.String("job", j.id), slog.String("error", err.Error()))
	}
}

// Stats returns the job's stats document: the frozen journal bytes for a
// terminal job (byte-identical across restarts), or a live snapshot.
func (m *Manager) Stats(j *Job) ([]byte, error) {
	j.mu.Lock()
	terminal, stats := j.state.Terminal(), j.stats
	j.mu.Unlock()
	if terminal {
		if stats != nil {
			return stats, nil
		}
		if m.journal != nil {
			if b, err := m.journal.loadStats(j.id); err == nil {
				j.mu.Lock()
				j.stats = b
				j.mu.Unlock()
				return b, nil
			}
		}
		// Terminal but never finalized (a job that completed under an
		// older build): freeze a document now so repeat reads agree.
		m.finalizeStats(j)
		j.mu.Lock()
		stats = j.stats
		j.mu.Unlock()
		if stats == nil {
			return nil, fmt.Errorf("server: job %s stats unavailable", j.id)
		}
		return stats, nil
	}
	doc := m.statsDoc(j, false)
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
