package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"voltstack/internal/telemetry"
)

// TestStatsLiveThenFinal drives a job through running → done over HTTP and
// checks the stats document in both phases: a live snapshot while the job
// runs, then a frozen Final document whose bytes never change again.
func TestStatsLiveThenFinal(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	mgr, err := NewManager(Config{
		MaxInFlight: 1,
		testJobStart: func(ctx context.Context, j *Job) {
			close(started)
			select {
			case <-release:
			case <-ctx.Done():
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := Start("127.0.0.1:0", mgr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Base: srv.URL(), Poll: 10 * time.Millisecond, Trace: telemetry.NewTrace()}
	ctx := context.Background()

	st, err := c.Submit(ctx, JobRequest{Kind: KindExperiment, Experiments: []string{"table1"}})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	var live JobStats
	b, err := c.Stats(ctx, st.ID)
	if err != nil {
		t.Fatalf("live stats: %v", err)
	}
	if err := json.Unmarshal(b, &live); err != nil {
		t.Fatalf("live stats JSON: %v\n%s", err, b)
	}
	if live.Final {
		t.Error("running job served Final stats")
	}
	if live.State != StateRunning {
		t.Errorf("live state = %s, want running", live.State)
	}
	if live.TraceID != c.Trace.TraceIDString() {
		t.Errorf("live trace ID = %q, want the client's %q", live.TraceID, c.Trace.TraceIDString())
	}

	close(release)
	if st, err = c.Wait(ctx, st.ID); err != nil || st.State != StateDone {
		t.Fatalf("wait: %v (state %s)", err, st.State)
	}
	final1, err := c.Stats(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	final2, err := c.Stats(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final1, final2) {
		t.Error("terminal stats changed between reads")
	}
	var fin JobStats
	if err := json.Unmarshal(final1, &fin); err != nil {
		t.Fatalf("final stats JSON: %v", err)
	}
	if !fin.Final || fin.State != StateDone {
		t.Errorf("final doc: final=%v state=%s", fin.Final, fin.State)
	}
	if fin.WallSeconds <= 0 {
		t.Errorf("final wall seconds = %g, want > 0", fin.WallSeconds)
	}
	if fin.QueueWaitSeconds < 0 {
		t.Errorf("negative queue wait %g", fin.QueueWaitSeconds)
	}
	if _, ok := fin.Registry.Histograms["job_queue_wait_seconds"]; !ok {
		t.Error("final registry missing job_queue_wait_seconds")
	}
	if st.TraceID != c.Trace.TraceIDString() {
		t.Errorf("status trace ID = %q, want %q", st.TraceID, c.Trace.TraceIDString())
	}
}

func TestStatsUnknownJob404(t *testing.T) {
	mgr, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := Start("127.0.0.1:0", mgr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Base: srv.URL()}
	var apiErr *APIError
	if _, err := c.Stats(context.Background(), "nope"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("stats of unknown job: %v, want 404", err)
	}
}

// TestStatsSurviveRestart checks the journal leg: a terminal job's stats
// document must be byte-identical when served by a fresh manager that
// adopted the job from the journal after a (simulated) daemon restart —
// including the original trace ID.
func TestStatsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	mgr, err := NewManager(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j, err := mgr.SubmitTrace(sweepRequest(), telemetry.NewTrace())
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	before, err := mgr.Stats(j)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Close()

	mgr2, err := NewManager(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	j2, ok := mgr2.Get(j.ID())
	if !ok {
		t.Fatal("restarted manager lost the job")
	}
	after, err := mgr2.Stats(j2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("stats changed across restart:\nbefore: %s\nafter:  %s", before, after)
	}
	var doc JobStats
	if err := json.Unmarshal(after, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Final || doc.TraceID == "" || doc.TraceID != j.Trace().TraceIDString() {
		t.Errorf("replayed doc: final=%v trace=%q want %q", doc.Final, doc.TraceID, j.Trace().TraceIDString())
	}
	if doc.TraceID != j2.Trace().TraceIDString() {
		t.Errorf("adopted job lost its trace: %q vs %q", doc.TraceID, j2.Trace().TraceIDString())
	}
	// A sweep's attribution includes the solver-layer counters. (Iteration
	// counts can legitimately be zero — the coarse grid takes the direct
	// solver — so only presence is checked there.)
	if doc.Registry.Counters["job_points_total"] == 0 {
		t.Errorf("sweep stats missing job_points_total: %v", doc.Registry.Counters)
	}
	if doc.Registry.Counters["job_pdn_solves_total"] == 0 {
		t.Errorf("sweep stats missing job_pdn_solves_total: %v", doc.Registry.Counters)
	}
	if _, ok := doc.Registry.Counters["job_solver_iterations_total"]; !ok {
		t.Errorf("sweep stats missing job_solver_iterations_total key: %v", doc.Registry.Counters)
	}
}

// TestSubmitWithoutTraceparentMints pins that every job carries a valid
// trace ID even when the submitter sent none.
func TestSubmitWithoutTraceparentMints(t *testing.T) {
	mgr, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	j, err := mgr.Submit(JobRequest{Kind: KindExperiment, Experiments: []string{"table1"}})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if !j.Trace().Valid() {
		t.Error("submitted job has no trace context")
	}
	if st := j.Status(); len(st.TraceID) != 32 {
		t.Errorf("status trace ID %q, want 32 hex chars", st.TraceID)
	}
}
