package server

import (
	"bytes"
	"testing"
)

// FuzzDecodeJobRequest holds the request decoder to its contract on
// arbitrary input: it never panics, every rejection carries a non-empty
// message, and everything it accepts is normalized, re-validates cleanly,
// carries only finite floats and hashes to a cache key.
func FuzzDecodeJobRequest(f *testing.F) {
	for _, seed := range []string{
		`{"kind":"experiment","experiments":["table1","fig5a"]}`,
		`{"kind":"experiment","experiments":["fig5a"],"csv":true,"coarse":true}`,
		`{"kind":"sweep","sweep":{}}`,
		`{"kind":"sweep","sweep":{"layers":4,"imbalance":0.3,"pad_fractions":[0.5],"converter_count":[2],"tsvs":["few"],"grid_nx":8}}`,
		`{"kind":"em-mc","trials":100,"seed":7}`,
		``,
		`not json`,
		`null`,
		`[]`,
		`{}`,
		`{"kind":3}`,
		`{"kind":"experiment","experiments":["nope"]}`,
		`{"kind":"experiment","experiments":["thermal"],"csv":true}`,
		`{"kind":"sweep"}`,
		`{"kind":"sweep","sweep":{"layers":99}}`,
		`{"kind":"sweep","sweep":{"imbalance":-0.5}}`,
		`{"kind":"sweep","sweep":{"imbalance":1e999}}`,
		`{"kind":"sweep","sweep":{"pad_fractions":[1e-400]}}`,
		`{"kind":"sweep","sweep":{"tsvs":["dense","dense"]}}`,
		`{"kind":"em-mc","trials":-1}`,
		`{"kind":"em-mc","trials":1,"unknown_field":true}`,
		`{"kind":"em-mc","trials":1} trailing`,
		`{"kind":"em-mc","trials":1,"workers":-2}`,
		`{"kind":"em-mc","trials":1,"seed":-9}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeJobRequest(bytes.NewReader(data))
		if err != nil {
			if err.Error() == "" {
				t.Error("rejection with empty error message")
			}
			return
		}
		// Accepted requests must be fully normalized and stable under
		// re-validation.
		if verr := req.Validate(); verr != nil {
			t.Errorf("accepted request fails re-validation: %v (input %q)", verr, data)
		}
		if req.Seed < 1 {
			t.Errorf("accepted request has unnormalized seed %d", req.Seed)
		}
		if req.Kind == KindSweep {
			s := req.Sweep
			if s == nil || s.Imbalance == nil {
				t.Fatalf("accepted sweep without spec/imbalance (input %q)", data)
			}
			if !isFinite(*s.Imbalance) {
				t.Errorf("accepted non-finite imbalance (input %q)", data)
			}
			for _, pf := range s.PadFractions {
				if !isFinite(pf) || pf <= 0 || pf > 1 {
					t.Errorf("accepted out-of-range pad fraction %v (input %q)", pf, data)
				}
			}
		}
		if _, kerr := jobCacheKey(*req); kerr != nil {
			t.Errorf("accepted request has no cache key: %v (input %q)", kerr, data)
		}
	})
}
