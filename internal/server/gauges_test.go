package server

import (
	"context"
	"fmt"
	"testing"
	"time"

	"voltstack/internal/telemetry"
)

// TestOccupancyGaugesDrainToZero is the stale-gauge regression test for
// the admission instruments: after every submitted job reaches a terminal
// state, server_jobs_running and server_queue_depth must both read zero.
// Concurrent jobs exercise the read-modify-write hazard that the atomic
// Gauge.Add exists to close — with MaxInFlight > 1, two jobs finishing
// together under the old Set(Value()-1) could leave the gauge stuck above
// zero forever.
func TestOccupancyGaugesDrainToZero(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	mgr, err := NewManager(Config{
		MaxInFlight: 3,
		QueueDepth:  16,
		testJobStart: func(ctx context.Context, j *Job) {
			time.Sleep(time.Millisecond)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	const jobs = 12
	done := make([]<-chan struct{}, 0, jobs)
	for i := 0; i < jobs; i++ {
		// Distinct seeds defeat the result cache so every job truly runs.
		j, err := mgr.Submit(JobRequest{Kind: KindExperiment, Experiments: []string{"table1"}, Seed: int64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		done = append(done, j.Done())
	}
	for _, ch := range done {
		select {
		case <-ch:
		case <-time.After(30 * time.Second):
			t.Fatal("job never terminated")
		}
	}
	// The decrement is deferred past the Done close; give it a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		running, depth := mRunning.Value(), mQueueDepth.Value()
		if running == 0 && depth == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges did not drain: server_jobs_running=%v server_queue_depth=%v", running, depth)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGaugeAddAtomicity pins the telemetry primitive the occupancy
// gauges rely on: concurrent Add calls must never lose an update.
func TestGaugeAddAtomicity(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	g := telemetry.NewGauge(fmt.Sprintf("test_gauge_add_%d", time.Now().UnixNano()))
	const workers, per = 8, 1000
	doneCh := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < per; i++ {
				g.Add(1)
				g.Add(-1)
				g.Add(1)
			}
			doneCh <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-doneCh
	}
	if v := g.Value(); v != workers*per {
		t.Fatalf("gauge = %v after %d net increments, want %d", v, workers*per, workers*per)
	}
}
