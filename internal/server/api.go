// Package server is the evaluation service: an HTTP/JSON front end over
// the cross-layer models (explore sweeps, the core experiment registry,
// the EM Monte Carlo cross-check) with bounded admission control,
// per-job cancellation, content-addressed result caching (rescache),
// journaled job state and checkpoint-based resume across restarts.
//
// API surface (all JSON):
//
//	POST   /v1/jobs               submit a job        → 202 JobStatus, 400, 429 (+Retry-After), 503 draining
//	GET    /v1/jobs               list jobs           → 200 [JobStatus]
//	GET    /v1/jobs/{id}          job status          → 200 JobStatus, 404
//	GET    /v1/jobs/{id}/result   job output          → 200 bytes, 404, 409 until done
//	GET    /v1/jobs/{id}/stats    per-job resource attribution → 200 JobStats, 404
//	DELETE /v1/jobs/{id}          cancel              → 200 JobStatus, 404
//	GET    /v1/designs:evaluate   one design, synchronously → 200 explore.Metrics
//
// plus the telemetry observability endpoints (/metrics /healthz /statusz
// /debug/pprof) on the same listener.
package server

import (
	"fmt"
	"math"
	"strings"

	"voltstack/internal/core"
	"voltstack/internal/pdngrid"
)

// SchemaVersion identifies the job-request JSON layout and is folded into
// every cache key, so a schema change can never replay results recorded
// under different semantics.
const SchemaVersion = 1

// Job kinds.
const (
	KindExperiment = "experiment" // named drivers from the core registry
	KindSweep      = "sweep"      // an explore.Space design-space sweep
	KindEMMC       = "em-mc"      // EM lifetime closed-form vs. Monte Carlo
)

// JobRequest is the submission schema of POST /v1/jobs.
type JobRequest struct {
	// Kind selects the job type: "experiment", "sweep" or "em-mc".
	Kind string `json:"kind"`

	// Experiments names the drivers to run, in order, for an experiment
	// job (the vsexplore -exp set). The result is the concatenation of
	// their rendered outputs — byte-identical to vsexplore's stdout for
	// the same selection (minus its trailing timing line in text mode).
	Experiments []string `json:"experiments,omitempty"`
	// CSV selects the machine-readable rendering (fig3a/b, fig5a/b,
	// fig6, fig7, fig8 only).
	CSV bool `json:"csv,omitempty"`

	// Sweep configures a design-space sweep job.
	Sweep *SweepSpec `json:"sweep,omitempty"`

	// Trials is the Monte Carlo budget of an em-mc job.
	Trials int `json:"trials,omitempty"`

	// Coarse evaluates on a 16x16 PDN mesh instead of 32x32 (for a sweep
	// job this is the default grid; explicit grid_nx/grid_ny win).
	Coarse bool `json:"coarse,omitempty"`
	// Seed is the study RNG seed; 0 selects the default (1).
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds the job's evaluation concurrency; 0 selects the
	// server default (GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// SweepSpec parameterizes the enumerated design space of a sweep job.
// Zero/absent fields select the paper's defaults (explore.DefaultSpace).
type SweepSpec struct {
	Layers int `json:"layers,omitempty"` // stack depth, default 8

	// Imbalance is the workload point for noise/efficiency, in [0,1];
	// absent selects the application average (0.65). A pointer so that an
	// explicit 0 is distinguishable from "use the default".
	Imbalance *float64 `json:"imbalance,omitempty"`

	PadFractions   []float64 `json:"pad_fractions,omitempty"`   // default 0.25, 0.5, 1.0
	ConverterCount []int     `json:"converter_count,omitempty"` // default 2, 4, 6, 8
	TSVs           []string  `json:"tsvs,omitempty"`            // of "dense", "sparse", "few"; default all three

	GridNx int `json:"grid_nx,omitempty"` // mesh columns; default 32 (16 with coarse)
	GridNy int `json:"grid_ny,omitempty"` // mesh rows; default GridNx
}

// tsvTopologies maps the wire names to the Table 2 design points.
var tsvTopologies = map[string]func() pdngrid.TSVTopology{
	"dense":  pdngrid.DenseTSV,
	"sparse": pdngrid.SparseTSV,
	"few":    pdngrid.FewTSV,
}

// FieldError is a validation failure naming the offending request field.
type FieldError struct {
	Field string
	Msg   string
}

func (e *FieldError) Error() string { return fmt.Sprintf("field %s: %s", e.Field, e.Msg) }

func fieldErr(field, format string, args ...any) error {
	return &FieldError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Normalize rewrites the request into its canonical effective form:
// names lowercased, every defaulted field made explicit. Two requests
// asking for the same evaluation therefore hash to the same cache key
// regardless of which defaults the caller spelled out. Call it before
// Validate.
func (r *JobRequest) Normalize() {
	r.Kind = strings.ToLower(strings.TrimSpace(r.Kind))
	for i, e := range r.Experiments {
		r.Experiments[i] = strings.ToLower(strings.TrimSpace(e))
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Kind == KindSweep && r.Sweep != nil {
		s := r.Sweep
		if s.Layers == 0 {
			s.Layers = 8
		}
		if s.Imbalance == nil {
			imb := 0.65
			s.Imbalance = &imb
		}
		if len(s.PadFractions) == 0 {
			s.PadFractions = []float64{0.25, 0.5, 1.0}
		}
		if len(s.ConverterCount) == 0 {
			s.ConverterCount = []int{2, 4, 6, 8}
		}
		if len(s.TSVs) == 0 {
			s.TSVs = []string{"dense", "sparse", "few"}
		}
		for i, n := range s.TSVs {
			s.TSVs[i] = strings.ToLower(strings.TrimSpace(n))
		}
		if s.GridNx == 0 {
			if r.Coarse {
				s.GridNx = 16
			} else {
				s.GridNx = 32
			}
		}
		if s.GridNy == 0 {
			s.GridNy = s.GridNx
		}
	}
}

// Validate checks a normalized request, returning a *FieldError naming
// the offending field. Every float is required to be finite: NaN and
// infinities are rejected here even when the request was constructed
// programmatically rather than decoded from JSON (which cannot carry
// them).
func (r *JobRequest) Validate() error {
	switch r.Kind {
	case KindExperiment:
		if len(r.Experiments) == 0 {
			return fieldErr("experiments", "an experiment job must name at least one experiment")
		}
		for _, name := range r.Experiments {
			if !core.IsExperiment(name) {
				return fieldErr("experiments", "unknown experiment %q (have: %s)",
					name, strings.Join(core.ExperimentNames(), " "))
			}
			if r.CSV && !core.HasCSV(name) {
				return fieldErr("csv", "experiment %q has no CSV form (have: %s)",
					name, strings.Join(core.CSVExperimentNames(), " "))
			}
		}
		if r.Sweep != nil {
			return fieldErr("sweep", "not allowed for an experiment job")
		}
		if r.Trials != 0 {
			return fieldErr("trials", "not allowed for an experiment job")
		}
	case KindSweep:
		if r.Sweep == nil {
			return fieldErr("sweep", "a sweep job needs a sweep spec")
		}
		if len(r.Experiments) != 0 {
			return fieldErr("experiments", "not allowed for a sweep job")
		}
		if r.Trials != 0 {
			return fieldErr("trials", "not allowed for a sweep job")
		}
		if err := r.Sweep.validate(); err != nil {
			return err
		}
	case KindEMMC:
		if r.Trials < 1 || r.Trials > 1_000_000 {
			return fieldErr("trials", "must be in [1, 1000000], got %d", r.Trials)
		}
		if len(r.Experiments) != 0 {
			return fieldErr("experiments", "not allowed for an em-mc job")
		}
		if r.Sweep != nil {
			return fieldErr("sweep", "not allowed for an em-mc job")
		}
	case "":
		return fieldErr("kind", "required (one of %s, %s, %s)", KindExperiment, KindSweep, KindEMMC)
	default:
		return fieldErr("kind", "unknown kind %q (one of %s, %s, %s)", r.Kind, KindExperiment, KindSweep, KindEMMC)
	}
	if r.Workers < 0 || r.Workers > 256 {
		return fieldErr("workers", "must be in [0, 256], got %d", r.Workers)
	}
	if r.Seed < 0 {
		return fieldErr("seed", "must be non-negative, got %d", r.Seed)
	}
	return nil
}

func (s *SweepSpec) validate() error {
	if s.Layers < 2 || s.Layers > 16 {
		return fieldErr("sweep.layers", "must be in [2, 16], got %d", s.Layers)
	}
	if s.Imbalance == nil || !isFinite(*s.Imbalance) || *s.Imbalance < 0 || *s.Imbalance > 1 {
		return fieldErr("sweep.imbalance", "must be a finite value in [0, 1]")
	}
	if len(s.PadFractions) > 16 {
		return fieldErr("sweep.pad_fractions", "at most 16 values, got %d", len(s.PadFractions))
	}
	for _, f := range s.PadFractions {
		if !isFinite(f) || f <= 0 || f > 1 {
			return fieldErr("sweep.pad_fractions", "every fraction must be a finite value in (0, 1], got %g", f)
		}
	}
	if len(s.ConverterCount) > 16 {
		return fieldErr("sweep.converter_count", "at most 16 values, got %d", len(s.ConverterCount))
	}
	for _, n := range s.ConverterCount {
		if n < 1 || n > 16 {
			return fieldErr("sweep.converter_count", "every count must be in [1, 16], got %d", n)
		}
	}
	if len(s.TSVs) > len(tsvTopologies) {
		return fieldErr("sweep.tsvs", "at most %d topologies, got %d", len(tsvTopologies), len(s.TSVs))
	}
	seen := map[string]bool{}
	for _, name := range s.TSVs {
		if _, ok := tsvTopologies[name]; !ok {
			return fieldErr("sweep.tsvs", "unknown TSV topology %q (have: dense sparse few)", name)
		}
		if seen[name] {
			return fieldErr("sweep.tsvs", "duplicate TSV topology %q", name)
		}
		seen[name] = true
	}
	if s.GridNx < 4 || s.GridNx > 256 {
		return fieldErr("sweep.grid_nx", "must be in [4, 256], got %d", s.GridNx)
	}
	if s.GridNy < 4 || s.GridNy > 256 {
		return fieldErr("sweep.grid_ny", "must be in [4, 256], got %d", s.GridNy)
	}
	return nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// JobState is the lifecycle of a job.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobStatus is the status representation served for a job.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Kind  string   `json:"kind"`
	// Key is the job's content address in the result cache.
	Key string `json:"key"`
	// Completed/Total report checkpointed progress: experiment drivers
	// finished, sweep points evaluated, or 0/1 for em-mc.
	Completed int `json:"completed"`
	Total     int `json:"total"`
	// CacheHit marks a job whose result was served from the cache (or a
	// concurrent identical computation) without new model evaluations.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Resumed marks a job re-adopted from the journal after a restart.
	Resumed bool `json:"resumed,omitempty"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`

	CreatedAt  string `json:"created_at,omitempty"`  // RFC 3339
	StartedAt  string `json:"started_at,omitempty"`  // RFC 3339
	FinishedAt string `json:"finished_at,omitempty"` // RFC 3339

	ResultBytes int `json:"result_bytes,omitempty"`

	// TraceID is the job's 32-hex-char trace ID: the submitter's (when the
	// request carried a valid traceparent header) or a server-minted one.
	TraceID string `json:"trace_id,omitempty"`
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}
