// Package parallel is the shared bounded worker pool behind every
// embarrassingly parallel fan-out of the toolchain: the design-space
// sweep (explore), the EM Monte Carlo trials (em) and the independent
// figure drivers (core, cmd/vsexplore). The evaluation pipeline is
// hundreds of independent PDN solves, so throughput scales with cores —
// but every API here is deterministic by construction: results are
// written by input index, so they depend only on the inputs (and, for
// stochastic tasks, the seed), never on goroutine scheduling or the
// worker count.
package parallel

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"voltstack/internal/telemetry"
)

// Pool instrumentation: per-task queue wait and run time, plus per-batch
// worker occupancy (busy time / (wall × workers)) — the signal that tells
// a sweep whether it is solver-bound or scheduling-bound. Everything here
// is a no-op unless telemetry is enabled; the disabled cost per task is a
// single atomic load.
var (
	mBatches     = telemetry.NewCounter("parallel_batches_total")
	mTasks       = telemetry.NewCounter("parallel_tasks_total")
	mTaskSeconds = telemetry.NewHistogram("parallel_task_seconds")
	mQueueWait   = telemetry.NewHistogram("parallel_queue_wait_seconds")
	mOccupancy   = telemetry.NewHistogram("parallel_batch_occupancy")
	mLastOccup   = telemetry.NewGauge("parallel_last_occupancy")
)

// batchStats accumulates one ForEachN invocation's busy time.
type batchStats struct {
	start time.Time
	busy  atomic.Int64 // nanoseconds
}

// newBatchStats returns nil (a no-op) when telemetry is disabled.
func newBatchStats() *batchStats {
	if !telemetry.Enabled() {
		return nil
	}
	return &batchStats{start: time.Now()}
}

// task wraps one fn(i) call with wait/run accounting. Nil-safe.
func (b *batchStats) task(i int, fn func(i int) error) error {
	if b == nil {
		return fn(i)
	}
	t0 := time.Now()
	mQueueWait.Observe(t0.Sub(b.start).Seconds())
	err := fn(i)
	d := time.Since(t0)
	b.busy.Add(int64(d))
	mTasks.Add(1)
	mTaskSeconds.Observe(d.Seconds())
	return err
}

// finish records the batch-level occupancy metrics. Nil-safe.
func (b *batchStats) finish(workers int) {
	if b == nil {
		return
	}
	mBatches.Add(1)
	wall := time.Since(b.start).Seconds()
	if wall <= 0 || workers < 1 {
		return
	}
	occ := float64(b.busy.Load()) / float64(time.Second) / (wall * float64(workers))
	mOccupancy.Observe(occ)
	mLastOccup.Set(occ)
}

// EnvWorkers is the environment variable that overrides the default
// worker count for every pool created without an explicit size.
const EnvWorkers = "VOLTSTACK_WORKERS"

// DefaultWorkers returns the worker count used when none is requested:
// VOLTSTACK_WORKERS when set to a positive integer, otherwise
// GOMAXPROCS.
func DefaultWorkers() int {
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Pool is a bounded worker pool. Pools hold no state between calls, so
// one pool may be reused for any number of Map/ForEach invocations,
// including concurrent ones. A nil *Pool and the zero Pool are valid and
// size themselves with DefaultWorkers.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most workers tasks concurrently.
// workers < 1 selects DefaultWorkers at call time (so a later change to
// VOLTSTACK_WORKERS or GOMAXPROCS is picked up).
func NewPool(workers int) *Pool { return &Pool{workers: workers} }

// Workers reports the concurrency bound the pool will use now.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return DefaultWorkers()
	}
	return p.workers
}

// ForEachN runs fn(0) … fn(n-1) on the pool's workers and waits for all
// started tasks to finish. Each index runs exactly once unless the run
// is cut short: when fn returns an error or ctx is cancelled, no new
// indices are started (in-flight tasks complete).
//
// The returned error is the error of the lowest-index task that ran and
// failed, or ctx's error if the context was cancelled first. With one
// worker the loop degenerates to the plain serial iteration.
func (p *Pool) ForEachN(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	stats := newBatchStats()
	if workers == 1 {
		defer stats.finish(1)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := stats.task(i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	defer stats.finish(workers)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := stats.task(i, fn); err != nil {
					mu.Lock()
					if firstIdx < 0 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// ForEach runs fn over every element of items on p's workers. A nil pool
// uses DefaultWorkers. Error semantics are those of ForEachN.
func ForEach[T any](ctx context.Context, p *Pool, items []T, fn func(i int, item T) error) error {
	return p.ForEachN(ctx, len(items), func(i int) error { return fn(i, items[i]) })
}

// Map evaluates fn over items on p's workers and returns the results in
// input order: out[i] is fn(i, items[i]) regardless of which worker ran
// it or when. On error the partial results are discarded and the
// lowest-index failure is returned (see ForEachN).
func Map[T, R any](ctx context.Context, p *Pool, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := p.ForEachN(ctx, len(items), func(i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Go runs every task concurrently on p's workers and waits for all of
// them — the "futures" form of ForEach for heterogeneous phases (e.g.
// the independent figures behind Study.Headlines). Each task typically
// writes its result into a variable it owns.
func Go(ctx context.Context, p *Pool, tasks ...func() error) error {
	return p.ForEachN(ctx, len(tasks), func(i int) error { return tasks[i]() })
}
