package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDefaultWorkersFromEnv(t *testing.T) {
	t.Setenv(EnvWorkers, "3")
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("DefaultWorkers with %s=3: got %d", EnvWorkers, got)
	}
	t.Setenv(EnvWorkers, "not-a-number")
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("invalid %s should fall back to GOMAXPROCS, got %d", EnvWorkers, got)
	}
	t.Setenv(EnvWorkers, "-2")
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("non-positive %s should fall back to GOMAXPROCS, got %d", EnvWorkers, got)
	}
}

func TestNilAndZeroPoolUsable(t *testing.T) {
	var nilPool *Pool
	if nilPool.Workers() < 1 {
		t.Error("nil pool must report a positive worker count")
	}
	var ran atomic.Int64
	if err := nilPool.ForEachN(context.Background(), 10, func(int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d of 10", ran.Load())
	}
}

func TestMapPreservesInputOrder(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), NewPool(8), items, func(i, v int) (int, error) {
		return v * v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	items := make([]int, 200)
	for i := range items {
		items[i] = i
	}
	var runs [][]int
	for _, w := range []int{1, 2, 8} {
		out, err := Map(context.Background(), NewPool(w), items, func(i, v int) (int, error) {
			return 3*v + 1, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, out)
	}
	for i := 1; i < len(runs); i++ {
		for j := range runs[0] {
			if runs[i][j] != runs[0][j] {
				t.Fatalf("worker-count run %d differs at %d", i, j)
			}
		}
	}
}

func TestConcurrencyBounded(t *testing.T) {
	const workers = 3
	var inFlight, highWater atomic.Int64
	err := NewPool(workers).ForEachN(context.Background(), 100, func(int) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			hw := highWater.Load()
			if cur <= hw || highWater.CompareAndSwap(hw, cur) {
				break
			}
		}
		runtime.Gosched()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hw := highWater.Load(); hw > workers {
		t.Errorf("observed %d concurrent tasks, pool bound is %d", hw, workers)
	}
}

func TestSingleErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := NewPool(4).ForEachN(context.Background(), 64, func(i int) error {
		ran.Add(1)
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The error must stop the run early: with 64 tasks and the failure a
	// quarter of the way in, at least the tail must have been skipped.
	if ran.Load() == 64 {
		t.Error("error did not short-circuit the remaining tasks")
	}
}

func TestFirstErrorIsLowestIndexThatRan(t *testing.T) {
	// Every task fails; the reported error must be from a task that ran,
	// and with one worker it is exactly the first index.
	err := NewPool(1).ForEachN(context.Background(), 10, func(i int) error {
		return fmt.Errorf("task %d", i)
	})
	if err == nil || err.Error() != "task 0" {
		t.Errorf("serial first-error = %v, want task 0", err)
	}
	err = NewPool(8).ForEachN(context.Background(), 10, func(i int) error {
		return fmt.Errorf("task %d", i)
	})
	if err == nil {
		t.Error("all tasks failing must yield an error")
	}
}

func TestCancellationMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Cancel once the first wave of tasks is in flight.
		for started.Load() == 0 {
			runtime.Gosched()
		}
		cancel()
		close(release)
	}()
	err := NewPool(2).ForEachN(ctx, 1000, func(int) error {
		started.Add(1)
		<-release // block until cancellation, keeping tasks "mid-flight"
		return nil
	})
	wg.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Errorf("cancellation did not stop dispatch (%d started)", n)
	}
}

func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := NewPool(4).ForEachN(ctx, 8, func(int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// Workers may observe cancellation before claiming any index; a few
	// tasks racing the cancel are fine, all of them running is not.
	if ran.Load() == 8 {
		t.Error("pre-cancelled context should suppress the run")
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(4)
	// Sequential reuse.
	for round := 0; round < 20; round++ {
		var sum atomic.Int64
		if err := p.ForEachN(context.Background(), 50, func(i int) error {
			sum.Add(int64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if sum.Load() != 50*49/2 {
			t.Fatalf("round %d: sum %d", round, sum.Load())
		}
	}
	// Concurrent reuse: one pool driven from several goroutines at once.
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n atomic.Int64
			errs[g] = p.ForEachN(context.Background(), 100, func(int) error {
				n.Add(1)
				return nil
			})
			if errs[g] == nil && n.Load() != 100 {
				errs[g] = fmt.Errorf("goroutine %d ran %d of 100", g, n.Load())
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

func TestContentionStress(t *testing.T) {
	// Many tiny tasks through a small pool: exercises the index dispatch
	// and error bookkeeping under the race detector. Kept short-mode
	// friendly (runs in well under a second).
	n := 20000
	if testing.Short() {
		n = 2000
	}
	var sum atomic.Int64
	if err := NewPool(8).ForEachN(context.Background(), n, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * int64(n-1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestGoRunsAllTasks(t *testing.T) {
	var a, b, c int
	err := Go(context.Background(), NewPool(3),
		func() error { a = 1; return nil },
		func() error { b = 2; return nil },
		func() error { c = 3; return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 2 || c != 3 {
		t.Errorf("tasks did not all run: %d %d %d", a, b, c)
	}
}

func TestForEachSlice(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	out := make([]string, len(items))
	if err := ForEach(context.Background(), NewPool(2), items, func(i int, s string) error {
		out[i] = s + s
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, s := range items {
		if out[i] != s+s {
			t.Errorf("out[%d] = %q", i, out[i])
		}
	}
}

func TestTimeoutContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := NewPool(2).ForEachN(ctx, 1000, func(int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
