// Package explore is the design-space exploration layer the paper's
// toolchain exists to enable: it enumerates PDN design scenarios (PDN
// kind, TSV topology, pad allocation, converter count), evaluates each
// one's cost/benefit metrics with the cross-layer models, and extracts
// the Pareto-efficient set.
package explore

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"time"

	"voltstack/internal/em"
	"voltstack/internal/parallel"
	"voltstack/internal/pdngrid"
	"voltstack/internal/power"
	"voltstack/internal/sc"
	"voltstack/internal/telemetry"
	"voltstack/internal/units"
)

// Sweep instrumentation: design points evaluated and sweep throughput.
// No-ops unless telemetry is enabled.
var (
	mPoints      = telemetry.NewCounter("explore_points_total")
	mEvalSeconds = telemetry.NewHistogram("explore_eval_seconds")
	mSweepRate   = telemetry.NewGauge("explore_points_per_second")
)

// Design is one point in the PDN design space.
type Design struct {
	Kind              pdngrid.Kind
	TSV               pdngrid.TSVTopology
	PadPowerFraction  float64
	ConvertersPerCore int // VoltageStacked only
}

// Name renders a short design label.
func (d Design) Name() string {
	if d.Kind == pdngrid.VoltageStacked {
		return fmt.Sprintf("V-S/%s/%dconv/%.0f%%pads", d.TSV.Name, d.ConvertersPerCore, 100*d.PadPowerFraction)
	}
	return fmt.Sprintf("Reg/%s/%.0f%%pads", d.TSV.Name, 100*d.PadPowerFraction)
}

// Metrics are the evaluated costs and benefits of a design.
type Metrics struct {
	Design Design

	AreaOverheadPct float64 // silicon cost per layer, % of layer area
	MaxIRDropPct    float64 // noise at the evaluation imbalance, % Vdd
	Efficiency      float64 // delivery efficiency at the evaluation point
	TSVLifetime     float64 // normalized EM lifetime of the TSV array
	C4Lifetime      float64 // normalized EM lifetime of the pad array
	OffChipCurrentA float64 // board-side current draw
	PowerPads       int     // C4 pads consumed for power (fewer frees I/O)
	Feasible        bool    // converter ratings respected
}

// Space describes the enumeration.
type Space struct {
	Layers    int
	Chip      *power.Chip
	Params    pdngrid.Params
	Converter sc.Params
	EMTsv     em.BlackParams
	EMC4      em.BlackParams

	// Imbalance is the workload point used for noise/efficiency (the
	// application average by default).
	Imbalance float64

	PadFractions   []float64
	ConverterCount []int
	TSVs           []pdngrid.TSVTopology

	// Workers bounds the number of designs evaluated concurrently by Run;
	// < 1 selects parallel.DefaultWorkers (GOMAXPROCS, overridable via
	// VOLTSTACK_WORKERS). Results are identical for every worker count.
	Workers int

	// ForceFreshSolve disables the per-PDN prepared-solve engine and
	// rebuilds every network from scratch — the pre-caching baseline, kept
	// for benchmarking and equivalence tests.
	ForceFreshSolve bool

	// OnPoint, when non-nil, is invoked once per design point as its
	// evaluation completes — with the point's index in Designs() order and
	// its raw (pre-normalization) metrics — so a caller can checkpoint
	// partial progress or report completed/total without polling. Points
	// supplied through Precomputed fire the callback too. Calls arrive
	// from worker goroutines concurrently and in completion order, not
	// index order; the callback must be safe for concurrent use. The
	// *Metrics handed over is the same object Run later normalizes in
	// place, so callers that retain it past Run must copy it first.
	OnPoint func(index int, m *Metrics)

	// Precomputed supplies already-evaluated raw metrics by design index
	// (a resume checkpoint or a result cache); Run uses an entry instead
	// of evaluating that design, bit-identically to having computed it.
	// Run mutates entries during lifetime normalization, so supply fresh
	// copies, not pointers shared with a cache.
	Precomputed map[int]*Metrics
}

// DefaultSpace enumerates the paper's axes at the application-average
// imbalance on the deepest stack.
func DefaultSpace() Space {
	conv := sc.Default28nm()
	conv.Cap = sc.Trench
	return Space{
		Layers:         8,
		Chip:           power.Example16Core(),
		Params:         pdngrid.DefaultParams(),
		Converter:      conv,
		EMTsv:          em.DefaultTSV(),
		EMC4:           em.DefaultC4(),
		Imbalance:      0.65,
		PadFractions:   []float64{0.25, 0.5, 1.0},
		ConverterCount: []int{2, 4, 6, 8},
		TSVs:           []pdngrid.TSVTopology{pdngrid.DenseTSV(), pdngrid.SparseTSV(), pdngrid.FewTSV()},
	}
}

// Designs enumerates every design point of the space.
func (s Space) Designs() []Design {
	var out []Design
	for _, tsv := range s.TSVs {
		for _, pf := range s.PadFractions {
			out = append(out, Design{Kind: pdngrid.Regular, TSV: tsv, PadPowerFraction: pf})
			for _, nc := range s.ConverterCount {
				out = append(out, Design{
					Kind:              pdngrid.VoltageStacked,
					TSV:               tsv,
					PadPowerFraction:  pf,
					ConvertersPerCore: nc,
				})
			}
		}
	}
	return out
}

// Evaluate computes the metrics of one design. Lifetimes are normalized
// by the caller (Run normalizes to the best value in the space).
func (s Space) Evaluate(d Design) (*Metrics, error) {
	return s.EvaluateContext(context.Background(), d)
}

// EvaluateContext is Evaluate with a context carrying the trace spans and
// per-job telemetry scope the solver layers annotate (see telemetry
// WithTraceContext/WithScope). The context does not affect the computed
// metrics.
func (s Space) EvaluateContext(ctx context.Context, d Design) (*Metrics, error) {
	cfg := pdngrid.Config{
		Kind:              d.Kind,
		Layers:            s.Layers,
		Chip:              s.Chip,
		Params:            s.Params,
		TSV:               d.TSV,
		PadPowerFraction:  d.PadPowerFraction,
		ConvertersPerCore: d.ConvertersPerCore,
		Converter:         s.Converter,
		ForceFreshSolve:   s.ForceFreshSolve,
	}
	p, err := pdngrid.New(cfg)
	if err != nil {
		return nil, err
	}
	cores := s.Chip.NumCores()
	// EM evaluation always uses the all-active point; V-S noise uses the
	// interleaved imbalance pattern. The two scenarios differ only in load
	// currents (RHS), so they go through one batched solve sharing a single
	// factorization — bit-identical to two serial Solve calls.
	var r, rEM *pdngrid.Result
	uniform := pdngrid.UniformActivities(s.Layers, cores, 1)
	if d.Kind == pdngrid.VoltageStacked {
		acts := pdngrid.InterleavedActivities(s.Layers, cores, s.Imbalance)
		rs, err := p.SolveBatchContext(ctx, [][][]float64{acts, uniform})
		if err != nil {
			return nil, err
		}
		r, rEM = rs[0], rs[1]
	} else {
		if r, err = p.SolveContext(ctx, uniform); err != nil { // worst case
			return nil, err
		}
		rEM = r
	}
	tempK := units.CelsiusToKelvin(s.Params.TempCelsius)
	life := func(currents []float64, bp em.BlackParams) (float64, error) {
		g := em.NewGroup(bp.SigmaLog)
		for _, c := range currents {
			g.AddConductor(bp, c, tempK)
		}
		return g.MedianLifetime()
	}
	tsvLife, err := life(rEM.TSVCurrents, s.EMTsv)
	if err != nil {
		return nil, err
	}
	c4Life, err := life(rEM.PadCurrents, s.EMC4)
	if err != nil {
		return nil, err
	}
	return &Metrics{
		Design:          d,
		AreaOverheadPct: 100 * p.AreaOverheadFrac(),
		MaxIRDropPct:    100 * r.MaxIRDropFrac,
		Efficiency:      r.Efficiency,
		TSVLifetime:     tsvLife,
		C4Lifetime:      c4Life,
		OffChipCurrentA: offChipCurrent(r, cfg),
		PowerPads:       p.NumPowerPads(),
		Feasible:        !r.OverLimit,
	}, nil
}

func offChipCurrent(r *pdngrid.Result, cfg pdngrid.Config) float64 {
	rail := cfg.Params.Vdd
	if cfg.Kind == pdngrid.VoltageStacked {
		rail *= float64(cfg.Layers)
	}
	return r.InputPower / rail
}

// Result is an evaluated design space.
type Result struct {
	Points []*Metrics // every feasible design, lifetimes normalized to the max
	// Pareto marks the Pareto-efficient subset of Points (indices).
	Pareto []int
	// Dropped counts designs discarded for violating converter ratings.
	Dropped int
}

// Run evaluates the whole space and extracts the Pareto set over
// (area↓, noise↓, efficiency↑, TSV lifetime↑, C4 lifetime↑, power pads↓ —
// the last being the paper's pads-freed-for-I/O argument).
//
// Designs are evaluated concurrently on a pool of s.Workers workers, but
// the result is deterministic: Points keeps the Designs() enumeration
// order and the Pareto set is byte-identical to a serial (Workers=1) run.
func (s Space) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cancellation: a cancelled ctx stops dispatching
// design evaluations and returns the context's error.
func (s Space) RunContext(ctx context.Context) (*Result, error) {
	sp := telemetry.StartSpanCtx(ctx, "explore.Run")
	defer sp.End()
	scope := telemetry.ScopeFrom(ctx)
	designs := s.Designs()
	tRun := telemetry.Now()
	prog := telemetry.NewProgress("explore", len(designs))
	pool := parallel.NewPool(s.Workers)
	metrics, err := parallel.Map(ctx, pool, designs, func(i int, d Design) (*Metrics, error) {
		if m, ok := s.Precomputed[i]; ok && m != nil {
			prog.Add(1)
			scope.Counter("job_points_replayed_total").Add(1)
			if s.OnPoint != nil {
				s.OnPoint(i, m)
			}
			return m, nil
		}
		t0 := telemetry.Now()
		var tJob time.Time
		if scope != nil {
			tJob = time.Now()
		}
		m, err := s.EvaluateContext(ctx, d)
		if err != nil {
			return nil, fmt.Errorf("explore: %s: %v", d.Name(), err)
		}
		mPoints.Add(1)
		mEvalSeconds.Since(t0)
		if scope != nil {
			scope.Counter("job_points_total").Add(1)
			scope.Histogram("job_point_seconds").Observe(time.Since(tJob).Seconds())
		}
		prog.Add(1)
		if s.OnPoint != nil {
			s.OnPoint(i, m)
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	prog.Finish()
	if !tRun.IsZero() {
		if dt := time.Since(tRun).Seconds(); dt > 0 {
			mSweepRate.Set(float64(len(designs)) / dt)
		}
	}
	res := &Result{}
	var maxTSV, maxC4 float64
	for _, m := range metrics {
		if !m.Feasible {
			res.Dropped++
			if telemetry.EventsEnabled() {
				telemetry.Event(slog.LevelWarn, "explore: design rejected (converter rating violated)",
					slog.String("design", m.Design.Name()),
					slog.Float64("max_ir_drop_pct", m.MaxIRDropPct))
			}
			continue
		}
		res.Points = append(res.Points, m)
		maxTSV = math.Max(maxTSV, m.TSVLifetime)
		maxC4 = math.Max(maxC4, m.C4Lifetime)
	}
	for _, m := range res.Points {
		if maxTSV > 0 {
			m.TSVLifetime /= maxTSV
		}
		if maxC4 > 0 {
			m.C4Lifetime /= maxC4
		}
	}
	res.Pareto = paretoSet(res.Points)
	return res, nil
}

// dominates reports whether a is at least as good as b on every objective
// and strictly better on at least one.
func dominates(a, b *Metrics) bool {
	geq := a.AreaOverheadPct <= b.AreaOverheadPct &&
		a.MaxIRDropPct <= b.MaxIRDropPct &&
		a.Efficiency >= b.Efficiency &&
		a.TSVLifetime >= b.TSVLifetime &&
		a.C4Lifetime >= b.C4Lifetime &&
		a.PowerPads <= b.PowerPads
	if !geq {
		return false
	}
	return a.AreaOverheadPct < b.AreaOverheadPct ||
		a.MaxIRDropPct < b.MaxIRDropPct ||
		a.Efficiency > b.Efficiency ||
		a.TSVLifetime > b.TSVLifetime ||
		a.C4Lifetime > b.C4Lifetime ||
		a.PowerPads < b.PowerPads
}

func paretoSet(points []*Metrics) []int {
	var out []int
	for i, a := range points {
		dominated := false
		for j, b := range points {
			if i != j && dominates(b, a) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(x, y int) bool {
		return points[out[x]].AreaOverheadPct < points[out[y]].AreaOverheadPct
	})
	return out
}
