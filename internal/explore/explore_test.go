package explore

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"voltstack/internal/pdngrid"
)

// smallSpace keeps tests fast: coarse mesh, fewer axes.
func smallSpace() Space {
	s := DefaultSpace()
	s.Params.GridNx, s.Params.GridNy = 16, 16
	s.PadFractions = []float64{0.5}
	s.ConverterCount = []int{2, 8}
	s.TSVs = []pdngrid.TSVTopology{pdngrid.DenseTSV(), pdngrid.FewTSV()}
	return s
}

func TestDesignEnumeration(t *testing.T) {
	s := smallSpace()
	designs := s.Designs()
	// 2 TSVs x 1 fraction x (1 regular + 2 V-S) = 6.
	if len(designs) != 6 {
		t.Fatalf("designs = %d, want 6", len(designs))
	}
	names := map[string]bool{}
	for _, d := range designs {
		if names[d.Name()] {
			t.Errorf("duplicate design %s", d.Name())
		}
		names[d.Name()] = true
	}
}

func TestDesignNames(t *testing.T) {
	d := Design{Kind: pdngrid.Regular, TSV: pdngrid.DenseTSV(), PadPowerFraction: 0.25}
	if got := d.Name(); !strings.Contains(got, "Reg/Dense") || !strings.Contains(got, "25%") {
		t.Errorf("name = %q", got)
	}
	v := Design{Kind: pdngrid.VoltageStacked, TSV: pdngrid.FewTSV(), PadPowerFraction: 1, ConvertersPerCore: 8}
	if got := v.Name(); !strings.Contains(got, "V-S/Few/8conv") {
		t.Errorf("name = %q", got)
	}
}

func TestEvaluateSingleDesign(t *testing.T) {
	s := smallSpace()
	m, err := s.Evaluate(Design{
		Kind:              pdngrid.VoltageStacked,
		TSV:               pdngrid.FewTSV(),
		PadPowerFraction:  0.5,
		ConvertersPerCore: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Feasible {
		t.Error("8 conv/core at 65% should be feasible")
	}
	if m.MaxIRDropPct <= 0 || m.MaxIRDropPct > 20 {
		t.Errorf("noise = %g", m.MaxIRDropPct)
	}
	if m.Efficiency <= 0 || m.Efficiency >= 1 {
		t.Errorf("efficiency = %g", m.Efficiency)
	}
	if m.AreaOverheadPct < 20 {
		t.Errorf("8 converters + Few TSV should cost ~24%% area, got %g", m.AreaOverheadPct)
	}
	if m.OffChipCurrentA <= 0 || m.OffChipCurrentA > 20 {
		t.Errorf("off-chip current = %g A (stacked should be ~8 A)", m.OffChipCurrentA)
	}
}

func TestRunSpace(t *testing.T) {
	s := smallSpace()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if len(res.Pareto) == 0 || len(res.Pareto) > len(res.Points) {
		t.Fatalf("pareto size = %d of %d", len(res.Pareto), len(res.Points))
	}
	// Lifetimes are normalized to 1 at the best design.
	var maxTSV, maxC4 float64
	for _, m := range res.Points {
		if m.TSVLifetime > maxTSV {
			maxTSV = m.TSVLifetime
		}
		if m.C4Lifetime > maxC4 {
			maxC4 = m.C4Lifetime
		}
	}
	if maxTSV != 1 || maxC4 != 1 {
		t.Errorf("normalization failed: max lifetimes %g, %g", maxTSV, maxC4)
	}
	// No point in the Pareto set is dominated by any other point.
	for _, pi := range res.Pareto {
		for j, b := range res.Points {
			if j != pi && dominates(b, res.Points[pi]) {
				t.Errorf("pareto member %s dominated by %s",
					res.Points[pi].Design.Name(), b.Design.Name())
			}
		}
	}
}

// TestRunWorkerEquivalence is the determinism contract of the parallel
// sweep: ordering, normalization, Pareto set and every float must be
// bit-identical for workers = 1, 2 and 8.
func TestRunWorkerEquivalence(t *testing.T) {
	base := smallSpace()
	base.Params.GridNx, base.Params.GridNy = 8, 8 // tiny mesh: 3 runs stay fast

	var ref *Result
	for _, workers := range []int{1, 2, 8} {
		s := base
		s.Workers = workers
		res, err := s.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("workers=%d result differs from serial run", workers)
		}
	}
	if len(ref.Points) == 0 {
		t.Fatal("empty serial reference")
	}

	// The prepared-solve engine must not change a single bit versus the
	// rebuild-everything baseline, at any worker count.
	for _, workers := range []int{1, 2, 8} {
		s := base
		s.Workers = workers
		s.ForceFreshSolve = true
		res, err := s.Run()
		if err != nil {
			t.Fatalf("fresh workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("ForceFreshSolve workers=%d result differs from prepared run", workers)
		}
	}
}

// TestRunOnPointCallback is the progress-hook contract: OnPoint fires
// exactly once per enumerated design, with its Designs() index, at every
// worker count — the property the serving layer's checkpointing relies on.
func TestRunOnPointCallback(t *testing.T) {
	for _, workers := range []int{1, 8} {
		s := smallSpace()
		s.Params.GridNx, s.Params.GridNy = 8, 8
		s.Workers = workers
		n := len(s.Designs())
		var calls atomic.Int64
		var mu sync.Mutex
		seen := map[int]bool{}
		s.OnPoint = func(i int, m *Metrics) {
			calls.Add(1)
			if m == nil {
				t.Errorf("workers=%d: OnPoint(%d) got nil metrics", workers, i)
			}
			mu.Lock()
			if seen[i] {
				t.Errorf("workers=%d: OnPoint fired twice for index %d", workers, i)
			}
			seen[i] = true
			mu.Unlock()
		}
		if _, err := s.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := calls.Load(); got != int64(n) {
			t.Errorf("workers=%d: OnPoint fired %d times, want %d", workers, got, n)
		}
		for i := 0; i < n; i++ {
			if !seen[i] {
				t.Errorf("workers=%d: no OnPoint call for index %d", workers, i)
			}
		}
	}
}

// TestRunPrecomputed proves the resume path: a run whose every point is
// supplied via Precomputed must reproduce the evaluated Result bit for
// bit without touching the models (the chip is nilled out, so any real
// evaluation would fail).
func TestRunPrecomputed(t *testing.T) {
	base := smallSpace()
	base.Params.GridNx, base.Params.GridNy = 8, 8

	// Reference run, capturing raw (pre-normalization) metrics copies.
	var mu sync.Mutex
	raw := map[int]*Metrics{}
	s1 := base
	s1.OnPoint = func(i int, m *Metrics) {
		cp := *m
		mu.Lock()
		raw[i] = &cp
		mu.Unlock()
	}
	ref, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(base.Designs()) {
		t.Fatalf("captured %d raw points, want %d", len(raw), len(base.Designs()))
	}

	// Full replay: no design may be evaluated, so break the models.
	s2 := base
	s2.Chip = nil
	s2.Precomputed = copyMetricsMap(raw)
	res, err := s2.Run()
	if err != nil {
		t.Fatalf("precomputed run evaluated a design: %v", err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Error("fully-precomputed run differs from evaluated run")
	}

	// Partial replay (even indices cached, odd ones evaluated) must agree
	// too — the mid-sweep-restart scenario.
	s3 := base
	s3.Precomputed = map[int]*Metrics{}
	for i, m := range copyMetricsMap(raw) {
		if i%2 == 0 {
			s3.Precomputed[i] = m
		}
	}
	res3, err := s3.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res3, ref) {
		t.Error("partially-precomputed run differs from evaluated run")
	}
}

func copyMetricsMap(in map[int]*Metrics) map[int]*Metrics {
	out := make(map[int]*Metrics, len(in))
	for i, m := range in {
		cp := *m
		out[i] = &cp
	}
	return out
}

func TestRunContextCancelled(t *testing.T) {
	s := smallSpace()
	s.Params.GridNx, s.Params.GridNy = 8, 8
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestVSOnParetoFront(t *testing.T) {
	// The paper's thesis in DSE form: at least one voltage-stacked design
	// must be Pareto-efficient (its lifetime and off-chip-current wins
	// cannot all be matched by regular designs).
	res, err := smallSpace().Run()
	if err != nil {
		t.Fatal(err)
	}
	foundVS := false
	for _, pi := range res.Pareto {
		if res.Points[pi].Design.Kind == pdngrid.VoltageStacked {
			foundVS = true
			break
		}
	}
	if !foundVS {
		t.Error("no V-S design on the Pareto front")
	}
}

func TestInfeasibleDesignsDropped(t *testing.T) {
	// 2 conv/core at 100% imbalance violates the converter rating.
	s := smallSpace()
	s.Imbalance = 1.0
	s.ConverterCount = []int{2}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("expected infeasible designs to be dropped at 100% imbalance")
	}
}

func TestDominates(t *testing.T) {
	a := &Metrics{AreaOverheadPct: 1, MaxIRDropPct: 1, Efficiency: 0.9, TSVLifetime: 1, C4Lifetime: 1}
	b := &Metrics{AreaOverheadPct: 2, MaxIRDropPct: 2, Efficiency: 0.8, TSVLifetime: 0.5, C4Lifetime: 0.5}
	if !dominates(a, b) || dominates(b, a) {
		t.Error("clear domination not detected")
	}
	// Equal points do not dominate each other.
	if dominates(a, a) {
		t.Error("a point must not dominate itself (no strict improvement)")
	}
	// Trade-off points: neither dominates.
	c := &Metrics{AreaOverheadPct: 0.5, MaxIRDropPct: 3, Efficiency: 0.9, TSVLifetime: 1, C4Lifetime: 1}
	if dominates(a, c) || dominates(c, a) {
		t.Error("trade-off points should be incomparable")
	}
}

func TestLowPadVSOnFront(t *testing.T) {
	// With pads as an objective, a V-S design with a small power-pad
	// allocation must appear on the front: it frees pads for I/O at
	// near-unchanged lifetime, the paper's Sec. 5.1 argument.
	s := smallSpace()
	s.PadFractions = []float64{0.25, 1.0}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range res.Pareto {
		m := res.Points[pi]
		if m.Design.Kind == pdngrid.VoltageStacked && m.Design.PadPowerFraction <= 0.25 {
			return
		}
	}
	t.Error("no low-pad V-S design on the Pareto front")
}
