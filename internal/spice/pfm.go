package spice

import (
	"fmt"
	"math"

	"voltstack/internal/sparse"
)

// PFMResult extends Result with the pulse statistics of a
// pulse-frequency-modulated run.
type PFMResult struct {
	Result
	// PulseRate is the fraction of switching cycles actually executed —
	// the circuit-level analogue of the compact ClosedLoop policy's
	// frequency scaling.
	PulseRate float64
}

// rOff is the off-state leakage resistance of an open switch (keeps the
// hold-state matrix nonsingular and models subthreshold leakage).
const rOff = 1e9

// SimulatePFM runs the cell under lower-bound pulse-skipping control: at
// every cycle boundary the controller pulses (one full A/B cycle) only if
// the output has sagged below vRef, and otherwise holds (all switches
// off) for a cycle. This is the circuit-level realization of the
// closed-loop policy the paper validates in Fig. 3a — the effective
// switching frequency, and with it the parasitic loss, tracks the load.
//
// The run simulates warmupCycles then measures over measureCycles.
func (c Cell) SimulatePFM(iLoad, vRef float64, opts SimOptions) (PFMResult, error) {
	if c.Vin <= 0 || c.CFly <= 0 || c.RSwitch <= 0 || c.FSw <= 0 {
		return PFMResult{}, fmt.Errorf("spice: invalid cell %+v", c)
	}
	if vRef <= 0 || vRef >= c.Vin {
		return PFMResult{}, fmt.Errorf("spice: vRef %g out of (0, Vin)", vRef)
	}
	opts = opts.withDefaults()
	period := 1 / c.FSw
	dt := period / float64(2*opts.StepsPerPhase)

	switchesA := [][2]int{{nVin, nC1T}, {nC1B, nVmid}, {nVmid, nC2T}, {nC2B, -1}}
	switchesB := [][2]int{{nVin, nC2T}, {nC2B, nVmid}, {nVmid, nC1T}, {nC1B, -1}}
	allSwitches := append(append([][2]int{}, switchesA...), switchesB...)

	caps := []struct {
		a, b int
		c    float64
	}{
		{nC1T, nC1B, c.CFly},
		{nC2T, nC2B, c.CFly},
		{nC1B, -1, c.KBottomPlate * c.CFly},
		{nC2B, -1, c.KBottomPlate * c.CFly},
		{nVmid, -1, c.CLoad},
	}

	build := func(on [][2]int) (*sparse.DenseLU, error) {
		m := sparse.NewDense(numNodes)
		stamp := func(a, b int, g float64) {
			if a >= 0 {
				m.Add(a, a, g)
			}
			if b >= 0 {
				m.Add(b, b, g)
			}
			if a >= 0 && b >= 0 {
				m.Add(a, b, -g)
				m.Add(b, a, -g)
			}
		}
		stamp(nVin, -1, 1/rSource)
		onSet := map[[2]int]bool{}
		for _, sw := range on {
			onSet[sw] = true
		}
		for _, sw := range allSwitches {
			g := 1 / rOff
			if onSet[sw] {
				g = 1 / c.RSwitch
			}
			stamp(sw[0], sw[1], g)
		}
		for _, cp := range caps {
			stamp(cp.a, cp.b, cp.c/dt)
		}
		return m.LU()
	}

	luA, err := build(switchesA)
	if err != nil {
		return PFMResult{}, err
	}
	luB, err := build(switchesB)
	if err != nil {
		return PFMResult{}, err
	}
	luHold, err := build(nil)
	if err != nil {
		return PFMResult{}, err
	}

	vmid0 := c.Vin / 2
	v := make([]float64, numNodes)
	v[nVin] = c.Vin
	v[nVmid] = vmid0
	v[nC1T] = c.Vin
	v[nC1B] = vmid0
	v[nC2T] = vmid0
	v[nC2B] = 0

	rhs := make([]float64, numNodes)
	step := func(lu *sparse.DenseLU) {
		for i := range rhs {
			rhs[i] = 0
		}
		rhs[nVin] += c.Vin / rSource
		rhs[nVmid] -= iLoad
		for _, cp := range caps {
			dv := v[cp.a]
			if cp.b >= 0 {
				dv -= v[cp.b]
			}
			q := cp.c / dt * dv
			rhs[cp.a] += q
			if cp.b >= 0 {
				rhs[cp.b] -= q
			}
		}
		copy(v, lu.Solve(rhs))
	}

	warmup := opts.MaxCycles / 8
	if warmup < 100 {
		warmup = 100
	}
	measure := warmup * 2

	var sumV, sumI, minV, maxV float64
	pulses, total := 0, 0
	// The controller compares the previous cycle's average output against
	// the reference — less twitchy than sampling the instantaneous
	// boundary value, which sits near the ripple peak right after a pulse.
	lastCycleAvg := 0.0
	runCycle := func(measureIt bool) {
		pulse := lastCycleAvg < vRef
		var cycleSum float64
		for half := 0; half < 2; half++ {
			lu := luHold
			if pulse {
				if half == 0 {
					lu = luA
				} else {
					lu = luB
				}
			}
			for s := 0; s < opts.StepsPerPhase; s++ {
				step(lu)
				cycleSum += v[nVmid]
				if measureIt {
					sumV += v[nVmid]
					sumI += (c.Vin - v[nVin]) / rSource
					if v[nVmid] < minV {
						minV = v[nVmid]
					}
					if v[nVmid] > maxV {
						maxV = v[nVmid]
					}
				}
			}
		}
		lastCycleAvg = cycleSum / float64(2*opts.StepsPerPhase)
		if measureIt {
			total++
			if pulse {
				pulses++
			}
		}
	}

	for k := 0; k < warmup; k++ {
		runCycle(false)
	}
	minV, maxV = math.Inf(1), math.Inf(-1)
	for k := 0; k < measure; k++ {
		runCycle(true)
	}

	nSteps := float64(measure * 2 * opts.StepsPerPhase)
	vAvg := sumV / nSteps
	iAvg := sumI / nSteps
	pulseRate := float64(pulses) / float64(total)
	pOut := vAvg * iLoad
	// Gate loss is paid only on executed cycles.
	pGate := c.QGate * c.VGate * c.FSw * pulseRate
	pIn := c.Vin*iAvg + pGate
	eff := 0.0
	if pIn > 0 {
		eff = pOut / pIn
	}
	return PFMResult{
		Result: Result{
			VOutAvg:    vAvg,
			VOutRipple: maxV - minV,
			IInAvg:     iAvg,
			POut:       pOut,
			PIn:        pIn,
			Efficiency: eff,
			Cycles:     warmup + measure,
		},
		PulseRate: pulseRate,
	}, nil
}
