package spice

import (
	"testing"

	"voltstack/internal/sc"
)

func TestPFMValidation(t *testing.T) {
	c := defaultCell()
	if _, err := c.SimulatePFM(0.01, 0, SimOptions{}); err == nil {
		t.Error("vRef 0 not caught")
	}
	if _, err := c.SimulatePFM(0.01, 3, SimOptions{}); err == nil {
		t.Error("vRef > Vin not caught")
	}
	if _, err := (Cell{}).SimulatePFM(0.01, 0.9, SimOptions{}); err == nil {
		t.Error("invalid cell not caught")
	}
}

func TestPFMRegulatesToReference(t *testing.T) {
	c := defaultCell()
	r, err := c.SimulatePFM(0.02, 0.97, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The lower-bound controller parks the output near the reference
	// (within the ripple band below it) instead of letting it float up to
	// the open-loop equilibrium (~0.994 at this light load) — that
	// difference is exactly the pulses it saves.
	if r.VOutAvg < 0.92 || r.VOutAvg > 0.985 {
		t.Errorf("regulated output %g, want near/below 0.97", r.VOutAvg)
	}
	open, err := c.Simulate(0.02, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.VOutAvg >= open.VOutAvg-0.005 {
		t.Errorf("PFM output %g should sit clearly below the open-loop %g", r.VOutAvg, open.VOutAvg)
	}
}

func TestPFMPulseRateTracksLoad(t *testing.T) {
	c := defaultCell()
	prev := -1.0
	for _, il := range []float64{0.005, 0.02, 0.05} {
		r, err := c.SimulatePFM(il, 0.96, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.PulseRate <= prev {
			t.Fatalf("pulse rate must grow with load: %g at %g A", r.PulseRate, il)
		}
		if r.PulseRate <= 0 || r.PulseRate > 1 {
			t.Fatalf("pulse rate %g out of (0,1]", r.PulseRate)
		}
		prev = r.PulseRate
	}
}

func TestPFMBeatsOpenLoopAtLightLoad(t *testing.T) {
	// The point of closed-loop control (Fig. 3a): skipping cycles slashes
	// the fixed parasitic loss when the load is light.
	c := defaultCell()
	il := 0.005
	pfm, err := c.SimulatePFM(il, 0.97, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	open, err := c.Simulate(il, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pfm.Efficiency <= open.Efficiency+0.15 {
		t.Errorf("PFM %g should beat open loop %g by a wide margin at 5 mA",
			pfm.Efficiency, open.Efficiency)
	}
}

func TestPFMBoundedByCompactAndOpenLoop(t *testing.T) {
	// The compact ClosedLoop policy is the idealized continuous-frequency
	// bound; real pulse-skipping pays bottom-plate loss per pulse and is
	// limited by the output-capacitor sag budget, so its efficiency lands
	// between the open-loop floor and the compact ceiling.
	p := sc.Default28nm()
	c := defaultCell()
	for _, il := range []float64{0.005, 0.01} {
		pfm, err := c.SimulatePFM(il, 0.97, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		open, err := c.Simulate(il, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ceiling := sc.Evaluate(p, sc.ClosedLoop{}, 2.0, il).Efficiency
		if pfm.Efficiency <= open.Efficiency {
			t.Errorf("I=%g: PFM %g below open-loop floor %g", il, pfm.Efficiency, open.Efficiency)
		}
		if pfm.Efficiency > ceiling+0.02 {
			t.Errorf("I=%g: PFM %g above the idealized ceiling %g", il, pfm.Efficiency, ceiling)
		}
	}
}

func TestPFMFullLoadApproachesOpenLoop(t *testing.T) {
	// When the sustainable output sits below the reference the controller
	// pulses every cycle and PFM degenerates to open loop.
	c := defaultCell()
	pfm, err := c.SimulatePFM(0.04, 0.97, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pfm.PulseRate < 0.95 {
		t.Errorf("heavy load pulse rate %g, want ~1", pfm.PulseRate)
	}
	open, err := c.Simulate(0.04, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if diff := pfm.Efficiency - open.Efficiency; diff < -0.05 || diff > 0.05 {
		t.Errorf("full-load PFM %g vs open loop %g", pfm.Efficiency, open.Efficiency)
	}
}
