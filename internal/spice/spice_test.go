package spice

import (
	"math"
	"testing"

	"voltstack/internal/sc"
	"voltstack/internal/units"
)

func defaultCell() Cell {
	return CellFromParams(sc.Default28nm(), 2.0)
}

func TestCellFromParamsMapping(t *testing.T) {
	p := sc.Default28nm()
	c := CellFromParams(p, 2.0)
	if c.Vin != 2.0 {
		t.Errorf("Vin = %g", c.Vin)
	}
	if !units.WithinRel(c.CFly, p.Ctot/2, 1e-12) {
		t.Errorf("CFly = %g, want Ctot/2", c.CFly)
	}
	if !units.WithinRel(c.RSwitch, 8/p.Gtot, 1e-12) {
		t.Errorf("RSwitch = %g, want 8/Gtot", c.RSwitch)
	}
	if c.FSw != p.FSw {
		t.Errorf("FSw = %g", c.FSw)
	}
}

func TestNoLoadSitsAtMidpoint(t *testing.T) {
	c := defaultCell()
	c.KBottomPlate = 0 // remove the parasitic internal load
	c.QGate = 0
	r, err := c.Simulate(0, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(r.VOutAvg, 1.0, 1e-4, 1e-4) {
		t.Errorf("no-load Vout = %g, want 1.0", r.VOutAvg)
	}
	if math.Abs(r.IInAvg) > 1e-5 {
		t.Errorf("no-load input current = %g", r.IInAvg)
	}
}

func TestIdealTransformerCurrentRatio(t *testing.T) {
	// Charge conservation: a 2:1 cell draws exactly half the load current
	// from the input at periodic steady state (ignoring parasitics).
	c := defaultCell()
	c.KBottomPlate = 0
	c.QGate = 0
	for _, il := range []float64{0.02, 0.05, 0.08} {
		r, err := c.Simulate(il, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !units.WithinRel(r.IInAvg, il/2, 1e-3) {
			t.Errorf("I=%g: Iin = %g, want %g", il, r.IInAvg, il/2)
		}
	}
}

func TestOutputImpedanceMatchesCompactModel(t *testing.T) {
	// The headline Fig. 3 validation: the switch-level cell and the
	// Seeman compact model must agree on RSERIES (paper: 0.6 ohm).
	p := sc.Default28nm()
	c := defaultCell()
	c.KBottomPlate = 0
	c.QGate = 0
	z, err := c.OutputImpedance(0, 0.08, SimOptions{StepsPerPhase: 128})
	if err != nil {
		t.Fatal(err)
	}
	model := p.RSeriesNominal()
	if !units.WithinRel(z, model, 0.08) {
		t.Errorf("spice impedance %g vs model %g: disagree beyond 8%%", z, model)
	}
	if !units.ApproxEqual(z, 0.6, 0.05, 0.1) {
		t.Errorf("impedance %g should be near the paper's 0.6 ohm", z)
	}
}

func TestEfficiencyMatchesCompactModelOpenLoop(t *testing.T) {
	// Fig. 3b: model vs simulation efficiency within 2 points, 10-90 mA.
	p := sc.Default28nm()
	c := defaultCell()
	for _, il := range []float64{0.01, 0.03, 0.05, 0.07, 0.09} {
		r, err := c.Simulate(il, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		op := sc.Evaluate(p, sc.OpenLoop{}, 2.0, il)
		if math.Abs(r.Efficiency-op.Efficiency) > 0.02 {
			t.Errorf("I=%g: spice eff %.4f vs model %.4f", il, r.Efficiency, op.Efficiency)
		}
	}
}

func TestEfficiencyMatchesCompactModelClosedLoop(t *testing.T) {
	// Fig. 3a: closed-loop agreement within 3 points, 1.6-100 mA.
	p := sc.Default28nm()
	cl := sc.ClosedLoop{}
	for _, il := range []float64{1.6e-3, 6.3e-3, 25e-3, 100e-3} {
		c := defaultCell()
		c.FSw = cl.Freq(p, il)
		r, err := c.Simulate(il, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		op := sc.Evaluate(p, cl, 2.0, il)
		if math.Abs(r.Efficiency-op.Efficiency) > 0.03 {
			t.Errorf("I=%g: spice eff %.4f vs model %.4f", il, r.Efficiency, op.Efficiency)
		}
	}
}

func TestVoltageDropLinearInLoad(t *testing.T) {
	c := defaultCell()
	c.KBottomPlate = 0
	c.QGate = 0
	r1, err := c.Simulate(0.02, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Simulate(0.04, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := c.Simulate(0.06, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d12 := r1.VOutAvg - r2.VOutAvg
	d23 := r2.VOutAvg - r3.VOutAvg
	if !units.WithinRel(d12, d23, 0.02) {
		t.Errorf("drop not linear: %g vs %g", d12, d23)
	}
}

func TestBottomPlateLossPhysical(t *testing.T) {
	// Enabling the bottom-plate capacitors must cost close to
	// 2·Cbp·Vmid²·f of input power.
	base := defaultCell()
	base.QGate = 0
	clean := base
	clean.KBottomPlate = 0
	il := 0.05
	rDirty, err := base.Simulate(il, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rClean, err := clean.Simulate(il, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	extra := rDirty.PIn - rClean.PIn
	want := 2 * base.KBottomPlate * base.CFly * 1.0 * 1.0 * base.FSw
	if !units.WithinRel(extra, want, 0.15) {
		t.Errorf("bottom-plate loss = %g, want ~%g", extra, want)
	}
}

func TestRippleShrinksWithDecoupling(t *testing.T) {
	c := defaultCell()
	small, err := c.Simulate(0.05, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.CLoad *= 10
	big, err := c.Simulate(0.05, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if big.VOutRipple >= small.VOutRipple {
		t.Errorf("ripple %g should shrink with 10x decoupling (was %g)", big.VOutRipple, small.VOutRipple)
	}
}

func TestLowerFrequencyRaisesImpedance(t *testing.T) {
	c := defaultCell()
	c.KBottomPlate = 0
	c.QGate = 0
	z1, err := c.OutputImpedance(0, 0.05, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.FSw /= 4
	z2, err := c.OutputImpedance(0, 0.05, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if z2 <= z1 {
		t.Errorf("impedance should rise at lower f: %g -> %g", z1, z2)
	}
}

func TestSinkingLoad(t *testing.T) {
	// Push current INTO the output: the push-pull cell must absorb it and
	// the output rises above the midpoint.
	c := defaultCell()
	c.KBottomPlate = 0
	c.QGate = 0
	r, err := c.Simulate(-0.05, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.VOutAvg <= 1.0 {
		t.Errorf("sinking cell output = %g, want > 1", r.VOutAvg)
	}
	// Charge recycled back: input current goes negative (returned to rail).
	if r.IInAvg >= 0 {
		t.Errorf("sinking cell should return current to the input, got %g", r.IInAvg)
	}
}

func TestInvalidCellRejected(t *testing.T) {
	bad := []Cell{
		{},
		{Vin: 2},
		{Vin: 2, CFly: 4e-9},
		{Vin: 2, CFly: 4e-9, RSwitch: 0.5},
	}
	for i, c := range bad {
		if _, err := c.Simulate(0.01, SimOptions{}); err == nil {
			t.Errorf("cell %d should be rejected", i)
		}
	}
}

func TestOutputImpedanceNeedsDistinctPoints(t *testing.T) {
	c := defaultCell()
	if _, err := c.OutputImpedance(0.05, 0.05, SimOptions{}); err == nil {
		t.Error("expected error for identical load points")
	}
}

func TestSteadyStateDetection(t *testing.T) {
	c := defaultCell()
	r, err := c.Simulate(0.05, SimOptions{MaxCycles: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 1 || r.Cycles >= 4000 {
		t.Errorf("suspicious steady-state cycle count %d", r.Cycles)
	}
}
