// Package spice is a switch-level transient circuit simulator for the 2:1
// push-pull switched-capacitor cell of the paper's Fig. 1. It plays the
// role Cadence Spectre plays in the paper: an independent, physics-level
// reference against which the compact (Seeman) model of package sc is
// validated (the "Simulation" curves of Fig. 3).
//
// The cell is simulated with backward-Euler integration of the switched RC
// network: two fly capacitors that exchange positions between the two clock
// phases, explicit bottom-plate parasitic capacitors (whose charging loss
// is therefore captured physically), switch on-resistances, an output
// decoupling capacitor, and a DC load current. Gate-drive loss is added
// analytically. The simulator runs until periodic steady state and reports
// cycle-averaged output voltage, input current and efficiency.
package spice

import (
	"fmt"
	"math"

	"voltstack/internal/sc"
	"voltstack/internal/sparse"
	"voltstack/internal/telemetry"
)

// Switch-level simulator instrumentation: backward-Euler step counts and
// the periods-to-PSS distribution show how hard each operating point works
// the reference simulator. No-ops unless telemetry is enabled.
var (
	mSims      = telemetry.NewCounter("spice_simulations_total")
	mBESteps   = telemetry.NewCounter("spice_be_steps_total")
	mPSSCycles = telemetry.NewCounter("spice_pss_cycles_total")
	mCycleHist = telemetry.NewHistogram("spice_pss_cycles")
	mSimHist   = telemetry.NewHistogram("spice_sim_seconds")
)

// Cell describes the push-pull 2:1 cell to simulate.
type Cell struct {
	Vin          float64 // input rail voltage (V)
	CFly         float64 // per-capacitor fly capacitance (F); the cell has two
	KBottomPlate float64 // bottom-plate parasitic as a fraction of CFly
	RSwitch      float64 // per-switch on-resistance (Ω)
	FSw          float64 // switching frequency (Hz)
	CLoad        float64 // output decoupling capacitance (F)
	QGate        float64 // total gate charge per cycle (C), analytic loss
	VGate        float64 // gate drive voltage (V)
}

// CellFromParams maps a compact-model parameter set onto a simulatable
// cell: the compact Ctot splits evenly across the two fly capacitors, and
// the total switch conductance Gtot across the 8 switches (4 conducting
// per phase, 2 in series per capacitor branch).
func CellFromParams(p sc.Params, vin float64) Cell {
	perSwitchG := p.Gtot / 8
	return Cell{
		Vin:          vin,
		CFly:         p.Ctot / 2,
		KBottomPlate: p.KBottomPlate,
		RSwitch:      1 / perSwitchG,
		FSw:          p.FSw,
		CLoad:        p.Ctot / 4,
		QGate:        p.QGate,
		VGate:        p.VGate,
	}
}

// SimOptions controls integration accuracy and the steady-state search.
type SimOptions struct {
	StepsPerPhase int     // BE steps per clock phase (default 64)
	MaxCycles     int     // cycle budget for periodic steady state (default 4000)
	Tol           float64 // cycle-to-cycle average-output tolerance ×Vin (default 1e-7)
}

func (o SimOptions) withDefaults() SimOptions {
	if o.StepsPerPhase == 0 {
		o.StepsPerPhase = 64
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 4000
	}
	if o.Tol == 0 {
		o.Tol = 1e-7
	}
	return o
}

// Result reports cycle-averaged steady-state measurements.
type Result struct {
	VOutAvg    float64 // average output voltage over the final cycle (V)
	VOutRipple float64 // peak-to-peak output ripple (V)
	IInAvg     float64 // average current drawn from the input rail (A)
	POut       float64 // average power delivered to the load (W)
	PIn        float64 // average input power incl. analytic gate loss (W)
	Efficiency float64 // POut / PIn
	Cycles     int     // cycles simulated to reach steady state
}

// Node indices for the 6-node cell network.
const (
	nVin = iota
	nVmid
	nC1T
	nC1B
	nC2T
	nC2B
	numNodes
)

// rSource is the (small) source impedance used to make the ideal input
// rail stampable as a conductance; its drop is negligible but its current
// is the input-current measurement.
const rSource = 1e-4

// Simulate runs the cell with a constant load current iLoad drawn from the
// output node and returns steady-state measurements.
func (c Cell) Simulate(iLoad float64, opts SimOptions) (Result, error) {
	if c.Vin <= 0 || c.CFly <= 0 || c.RSwitch <= 0 || c.FSw <= 0 {
		return Result{}, fmt.Errorf("spice: invalid cell %+v", c)
	}
	opts = opts.withDefaults()
	tSim := telemetry.Now()
	period := 1 / c.FSw
	dt := period / float64(2*opts.StepsPerPhase)

	// Phase A: C1 on top (vin—vmid), C2 on bottom (vmid—gnd).
	// Phase B: C2 on top, C1 on bottom.
	switchesA := [][2]int{{nVin, nC1T}, {nC1B, nVmid}, {nVmid, nC2T}, {nC2B, -1}}
	switchesB := [][2]int{{nVin, nC2T}, {nC2B, nVmid}, {nVmid, nC1T}, {nC1B, -1}}

	caps := []struct {
		a, b int // b == -1 means ground
		c    float64
	}{
		{nC1T, nC1B, c.CFly},
		{nC2T, nC2B, c.CFly},
		{nC1B, -1, c.KBottomPlate * c.CFly},
		{nC2B, -1, c.KBottomPlate * c.CFly},
		{nVmid, -1, c.CLoad},
	}

	buildPhase := func(switches [][2]int) (*sparse.DenseLU, error) {
		m := sparse.NewDense(numNodes)
		stamp := func(a, b int, g float64) {
			if a >= 0 {
				m.Add(a, a, g)
			}
			if b >= 0 {
				m.Add(b, b, g)
			}
			if a >= 0 && b >= 0 {
				m.Add(a, b, -g)
				m.Add(b, a, -g)
			}
		}
		stamp(nVin, -1, 1/rSource)
		gs := 1 / c.RSwitch
		for _, sw := range switches {
			stamp(sw[0], sw[1], gs)
		}
		for _, cp := range caps {
			stamp(cp.a, cp.b, cp.c/dt)
		}
		return m.LU()
	}

	luA, err := buildPhase(switchesA)
	if err != nil {
		return Result{}, fmt.Errorf("spice: phase A matrix: %v", err)
	}
	luB, err := buildPhase(switchesB)
	if err != nil {
		return Result{}, fmt.Errorf("spice: phase B matrix: %v", err)
	}

	// Initial condition: ideal mid-rail operating point.
	vmid0 := c.Vin / 2
	v := make([]float64, numNodes)
	v[nVin] = c.Vin
	v[nVmid] = vmid0
	v[nC1T] = c.Vin
	v[nC1B] = vmid0
	v[nC2T] = vmid0
	v[nC2B] = 0

	rhs := make([]float64, numNodes)
	step := func(lu *sparse.DenseLU) {
		for i := range rhs {
			rhs[i] = 0
		}
		rhs[nVin] += c.Vin / rSource
		rhs[nVmid] -= iLoad
		for _, cp := range caps {
			dv := v[cp.a]
			if cp.b >= 0 {
				dv -= v[cp.b]
			}
			q := cp.c / dt * dv
			rhs[cp.a] += q
			if cp.b >= 0 {
				rhs[cp.b] -= q
			}
		}
		copy(v, lu.Solve(rhs))
	}

	var sumV, sumI, minV, maxV float64
	prevAvg := math.Inf(1)
	cycles := 0
	for cycles = 1; cycles <= opts.MaxCycles; cycles++ {
		sumV, sumI = 0, 0
		minV, maxV = math.Inf(1), math.Inf(-1)
		for half := 0; half < 2; half++ {
			lu := luA
			if half == 1 {
				lu = luB
			}
			for s := 0; s < opts.StepsPerPhase; s++ {
				step(lu)
				sumV += v[nVmid]
				sumI += (c.Vin - v[nVin]) / rSource
				if v[nVmid] < minV {
					minV = v[nVmid]
				}
				if v[nVmid] > maxV {
					maxV = v[nVmid]
				}
			}
		}
		avg := sumV / float64(2*opts.StepsPerPhase)
		if math.Abs(avg-prevAvg) < opts.Tol*c.Vin {
			prevAvg = avg
			break
		}
		prevAvg = avg
	}
	if cycles > opts.MaxCycles {
		return Result{}, fmt.Errorf("spice: no periodic steady state after %d cycles", opts.MaxCycles)
	}
	mSims.Add(1)
	mPSSCycles.Add(int64(cycles))
	mBESteps.Add(int64(cycles) * int64(2*opts.StepsPerPhase))
	mCycleHist.Observe(float64(cycles))
	mSimHist.Since(tSim)

	nSteps := float64(2 * opts.StepsPerPhase)
	vAvg := sumV / nSteps
	iAvg := sumI / nSteps
	pOut := vAvg * iLoad
	pGate := c.QGate * c.VGate * c.FSw
	pIn := c.Vin*iAvg + pGate
	eff := 0.0
	if pIn > 0 {
		eff = pOut / pIn
	}
	return Result{
		VOutAvg:    vAvg,
		VOutRipple: maxV - minV,
		IInAvg:     iAvg,
		POut:       pOut,
		PIn:        pIn,
		Efficiency: eff,
		Cycles:     cycles,
	}, nil
}

// OutputImpedance estimates the cell's effective output impedance by
// simulating two load points and differencing the average output voltages:
// R = (V(i1) - V(i2)) / (i2 - i1).
func (c Cell) OutputImpedance(i1, i2 float64, opts SimOptions) (float64, error) {
	if i1 == i2 {
		return 0, fmt.Errorf("spice: OutputImpedance needs distinct load points")
	}
	r1, err := c.Simulate(i1, opts)
	if err != nil {
		return 0, err
	}
	r2, err := c.Simulate(i2, opts)
	if err != nil {
		return 0, err
	}
	return (r1.VOutAvg - r2.VOutAvg) / (i2 - i1), nil
}
