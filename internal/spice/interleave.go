package spice

import (
	"fmt"
	"math"

	"voltstack/internal/sparse"
)

// Bank is an N-phase interleaved bank of push-pull cells sharing one
// output node, with clock phases staggered by T/N — the paper's converter
// uses 4-way interleaving. Interleaving leaves the averaged output
// impedance unchanged but divides the output ripple, which is what the
// bank simulation demonstrates.
type Bank struct {
	Cell   Cell // the per-cell design (its CFly is per cell)
	Phases int  // number of interleaved cells (≥ 1)
}

// NewBank builds an n-phase bank from an aggregate single-cell design:
// each cell receives 1/n of the fly and load capacitance and n times the
// per-switch resistance, preserving the aggregate RSSL and RFSL.
func NewBank(aggregate Cell, phases int) (Bank, error) {
	if phases < 1 {
		return Bank{}, fmt.Errorf("spice: bank needs at least 1 phase, got %d", phases)
	}
	cell := aggregate
	cell.CFly = aggregate.CFly / float64(phases)
	cell.RSwitch = aggregate.RSwitch * float64(phases)
	cell.CLoad = aggregate.CLoad // the shared output decap is not split
	return Bank{Cell: cell, Phases: phases}, nil
}

// Simulate runs the bank to periodic steady state with a shared constant
// load current and returns cycle-averaged measurements.
func (b Bank) Simulate(iLoad float64, opts SimOptions) (Result, error) {
	c := b.Cell
	n := b.Phases
	if n < 1 {
		return Result{}, fmt.Errorf("spice: invalid phase count %d", n)
	}
	if c.Vin <= 0 || c.CFly <= 0 || c.RSwitch <= 0 || c.FSw <= 0 {
		return Result{}, fmt.Errorf("spice: invalid cell %+v", c)
	}
	opts = opts.withDefaults()

	// The push-pull cell is itself two-phase symmetric, so the useful
	// stagger between cells is T/(2N): 2N slices of T/(2N) per period,
	// with cell i in phase A during slice s iff ((s - i) mod 2N) < N.
	slices := 2 * n
	stepsPerSlice := opts.StepsPerPhase / n
	if stepsPerSlice < 4 {
		stepsPerSlice = 4
	}
	period := 1 / c.FSw
	dt := period / float64(slices*stepsPerSlice)

	// Node layout: 0 = vin, 1 = vmid, then 4 nodes per cell.
	numN := 2 + 4*n
	cellNode := func(cell, k int) int { return 2 + 4*cell + k } // k: 0=c1t 1=c1b 2=c2t 3=c2b

	type capEl struct {
		a, b int
		c    float64
	}
	caps := []capEl{{1, -1, c.CLoad}}
	for i := 0; i < n; i++ {
		caps = append(caps,
			capEl{cellNode(i, 0), cellNode(i, 1), c.CFly},
			capEl{cellNode(i, 2), cellNode(i, 3), c.CFly},
			capEl{cellNode(i, 1), -1, c.KBottomPlate * c.CFly},
			capEl{cellNode(i, 3), -1, c.KBottomPlate * c.CFly},
		)
	}

	buildSlice := func(s int) (*sparse.DenseLU, error) {
		m := sparse.NewDense(numN)
		stamp := func(a, b int, g float64) {
			if a >= 0 {
				m.Add(a, a, g)
			}
			if b >= 0 {
				m.Add(b, b, g)
			}
			if a >= 0 && b >= 0 {
				m.Add(a, b, -g)
				m.Add(b, a, -g)
			}
		}
		stamp(0, -1, 1/rSource)
		gs := 1 / c.RSwitch
		for i := 0; i < n; i++ {
			inA := ((s-i)%slices+slices)%slices < n
			if inA {
				stamp(0, cellNode(i, 0), gs)  // vin - c1t
				stamp(cellNode(i, 1), 1, gs)  // c1b - vmid
				stamp(1, cellNode(i, 2), gs)  // vmid - c2t
				stamp(cellNode(i, 3), -1, gs) // c2b - gnd
			} else {
				stamp(0, cellNode(i, 2), gs)  // vin - c2t
				stamp(cellNode(i, 3), 1, gs)  // c2b - vmid
				stamp(1, cellNode(i, 0), gs)  // vmid - c1t
				stamp(cellNode(i, 1), -1, gs) // c1b - gnd
			}
		}
		for _, cp := range caps {
			stamp(cp.a, cp.b, cp.c/dt)
		}
		return m.LU()
	}

	lus := make([]*sparse.DenseLU, slices)
	for s := range lus {
		var err error
		if lus[s], err = buildSlice(s); err != nil {
			return Result{}, fmt.Errorf("spice: bank slice %d: %v", s, err)
		}
	}

	// Initial condition: ideal operating point.
	vmid0 := c.Vin / 2
	v := make([]float64, numN)
	v[0] = c.Vin
	v[1] = vmid0
	for i := 0; i < n; i++ {
		v[cellNode(i, 0)] = c.Vin
		v[cellNode(i, 1)] = vmid0
		v[cellNode(i, 2)] = vmid0
		v[cellNode(i, 3)] = 0
	}

	rhs := make([]float64, numN)
	step := func(lu *sparse.DenseLU) {
		for i := range rhs {
			rhs[i] = 0
		}
		rhs[0] += c.Vin / rSource
		rhs[1] -= iLoad
		for _, cp := range caps {
			dv := v[cp.a]
			if cp.b >= 0 {
				dv -= v[cp.b]
			}
			q := cp.c / dt * dv
			rhs[cp.a] += q
			if cp.b >= 0 {
				rhs[cp.b] -= q
			}
		}
		copy(v, lu.Solve(rhs))
	}

	stepsPerCycle := slices * stepsPerSlice
	var sumV, sumI, minV, maxV float64
	prevAvg := math.Inf(1)
	cycles := 0
	for cycles = 1; cycles <= opts.MaxCycles; cycles++ {
		sumV, sumI = 0, 0
		minV, maxV = math.Inf(1), math.Inf(-1)
		for s := 0; s < slices; s++ {
			for k := 0; k < stepsPerSlice; k++ {
				step(lus[s])
				sumV += v[1]
				sumI += (c.Vin - v[0]) / rSource
				if v[1] < minV {
					minV = v[1]
				}
				if v[1] > maxV {
					maxV = v[1]
				}
			}
		}
		avg := sumV / float64(stepsPerCycle)
		if math.Abs(avg-prevAvg) < opts.Tol*c.Vin {
			prevAvg = avg
			break
		}
		prevAvg = avg
	}
	if cycles > opts.MaxCycles {
		return Result{}, fmt.Errorf("spice: bank: no periodic steady state after %d cycles", opts.MaxCycles)
	}

	vAvg := sumV / float64(stepsPerCycle)
	iAvg := sumI / float64(stepsPerCycle)
	pOut := vAvg * iLoad
	pGate := c.QGate * c.VGate * c.FSw // aggregate gate charge unchanged
	pIn := c.Vin*iAvg + pGate
	eff := 0.0
	if pIn > 0 {
		eff = pOut / pIn
	}
	return Result{
		VOutAvg:    vAvg,
		VOutRipple: maxV - minV,
		IInAvg:     iAvg,
		POut:       pOut,
		PIn:        pIn,
		Efficiency: eff,
		Cycles:     cycles,
	}, nil
}
