package spice

import (
	"math"
	"testing"

	"voltstack/internal/sc"
	"voltstack/internal/units"
)

func cleanAggregate() Cell {
	c := CellFromParams(sc.Default28nm(), 2.0)
	c.KBottomPlate = 0
	c.QGate = 0
	return c
}

func TestBankSinglePhaseMatchesCell(t *testing.T) {
	// A 1-phase bank is the original cell; results must agree closely.
	agg := cleanAggregate()
	bank, err := NewBank(agg, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := bank.Simulate(0.05, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := agg.Simulate(0.05, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(rb.VOutAvg, rc.VOutAvg, 1e-3) {
		t.Errorf("bank %g vs cell %g", rb.VOutAvg, rc.VOutAvg)
	}
	if !units.WithinRel(rb.VOutRipple, rc.VOutRipple, 0.05) {
		t.Errorf("ripple bank %g vs cell %g", rb.VOutRipple, rc.VOutRipple)
	}
}

func TestInterleavingReducesRipple(t *testing.T) {
	// The point of the paper's 4-way interleaving: same averaged
	// impedance, much smaller output ripple.
	agg := cleanAggregate()
	one, err := NewBank(agg, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := NewBank(agg, 4)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := one.Simulate(0.08, SimOptions{StepsPerPhase: 128})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := four.Simulate(0.08, SimOptions{StepsPerPhase: 128})
	if err != nil {
		t.Fatal(err)
	}
	if r4.VOutRipple >= r1.VOutRipple/2 {
		t.Errorf("4-way ripple %g should be well below single-phase %g",
			r4.VOutRipple, r1.VOutRipple)
	}
	// The averaged output voltage (hence impedance) stays close.
	if math.Abs(r4.VOutAvg-r1.VOutAvg) > 0.01 {
		t.Errorf("interleaving should not change the average: %g vs %g",
			r4.VOutAvg, r1.VOutAvg)
	}
}

func TestBankIdealCurrentRatio(t *testing.T) {
	agg := cleanAggregate()
	bank, err := NewBank(agg, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := bank.Simulate(0.06, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(r.IInAvg, 0.03, 5e-3) {
		t.Errorf("input current %g, want ~0.03", r.IInAvg)
	}
}

func TestBankEfficiencyTracksCell(t *testing.T) {
	agg := CellFromParams(sc.Default28nm(), 2.0)
	bank, err := NewBank(agg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := bank.Simulate(0.05, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := agg.Simulate(0.05, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rb.Efficiency-rc.Efficiency) > 0.03 {
		t.Errorf("bank eff %g vs cell %g", rb.Efficiency, rc.Efficiency)
	}
}

func TestBankValidation(t *testing.T) {
	if _, err := NewBank(cleanAggregate(), 0); err == nil {
		t.Error("0 phases not caught")
	}
	bad := Bank{Cell: Cell{}, Phases: 2}
	if _, err := bad.Simulate(0.01, SimOptions{}); err == nil {
		t.Error("invalid cell not caught")
	}
}

func TestBankRippleMonotoneInPhases(t *testing.T) {
	agg := cleanAggregate()
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 4} {
		bank, err := NewBank(agg, n)
		if err != nil {
			t.Fatal(err)
		}
		r, err := bank.Simulate(0.06, SimOptions{StepsPerPhase: 128})
		if err != nil {
			t.Fatal(err)
		}
		if r.VOutRipple >= prev {
			t.Errorf("%d phases: ripple %g should shrink from %g", n, r.VOutRipple, prev)
		}
		prev = r.VOutRipple
	}
}
