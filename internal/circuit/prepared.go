// Prepared-solve engine: the structure-dependent work of Netlist.Solve —
// connectivity check, COO→CSR assembly with duplicate merging, fill-reducing
// ordering, and symbolic factorization / preconditioner pattern analysis —
// is hoisted into Netlist.Compile and done once. Repeat solves then restamp
// only element values (a linear pass with no sorting or allocation),
// numerically refactor on the cached symbolic structure, reuse PCG scratch
// vectors, and may warm-start from a previous solution.
//
// Determinism contract: with a nil warm start, Prepared.Solve produces a
// Solution bit-identical to a fresh Netlist.Solve on the same netlist and
// options. This holds because both paths share stampMatrix/stampRHS, the
// value restamp replays the exact accumulation order of CSR assembly
// (sparse.AssemblyMap), and every numeric refactor reproduces the
// from-scratch factorization arithmetic exactly.
package circuit

import (
	"fmt"
	"log/slog"

	"voltstack/internal/sparse"
	"voltstack/internal/telemetry"
)

// Prepared-engine instrumentation. Compiles should be rare (once per
// sparsity structure) and solves frequent; recompiles count structure-cache
// misses (topology or gPar-activity drift detected at Solve time).
var (
	mPrepCompiles   = telemetry.NewCounter("circuit_prepared_compiles_total")
	mPrepRecompiles = telemetry.NewCounter("circuit_prepared_recompiles_total")
	mPrepSolves     = telemetry.NewCounter("circuit_prepared_solves_total")
	mPrepRestamps   = telemetry.NewCounter("circuit_prepared_restamps_total")
	mPrepWarmStarts = telemetry.NewCounter("circuit_prepared_warm_starts_total")
)

// valueWriter replays the stamping sequence into a flat COO value stream,
// mirroring Builder.Add's zero-skip so slot t always corresponds to the
// same (row, col) pair the structure was compiled with. bad flags a drift
// between the replayed sequence and the compiled structure.
type valueWriter struct {
	dst []float64
	pos int
	bad bool
}

func (w *valueWriter) Add(i, j int, v float64) {
	if v == 0 {
		return
	}
	if w.pos >= len(w.dst) {
		w.bad = true
		return
	}
	w.dst[w.pos] = v
	w.pos++
}

// Prepared is a compiled solve plan for one Netlist. It caches everything
// that depends only on the sparsity structure and re-derives only values
// per solve. Use the Set* methods to change element values between solves;
// topology changes (added elements, nodes, or a converter's parasitic
// shunt crossing zero) are detected and trigger a transparent recompile.
//
// A Prepared is not safe for concurrent use.
type Prepared struct {
	net     *Netlist
	opts    SolveOptions
	kind    SolverKind
	tol     float64
	maxIter int

	// Structure sentinels checked on every Solve.
	nNodes    int
	counts    [7]int
	parActive []bool // converter gPar > 0 at compile time

	coo []float64 // element stamp values in canonical order
	am  *sparse.AssemblyMap
	a   *sparse.CSR
	rhs []float64

	// Per-kind cached symbolic structures, factors, and scratch.
	skySym *sparse.SkylineSymbolic
	skyF   *sparse.SkylineChol
	ndSym  *sparse.SparseCholSymbolic
	ndF    *sparse.SparseChol
	icSym  *sparse.IC0Symbolic
	icF    *sparse.IC0Prec
	icOK   bool
	amg    *sparse.AMGPrec
	amgOK  bool
	jac    *sparse.JacobiPrec
	ws     *sparse.PCGWorkspace
	bws    *sparse.PCGBatchWorkspace // lazily built by SolveBatch

	valsDirty bool // element values changed since last restamp
	factored  bool // current factorization matches current values
}

// Compile performs the structural phase of Solve once and returns a
// Prepared engine for repeated value-only solves.
func (n *Netlist) Compile(opts SolveOptions) (*Prepared, error) {
	p := &Prepared{net: n, opts: opts}
	if err := p.compile(); err != nil {
		return nil, err
	}
	return p, nil
}

// Netlist returns the netlist this engine was compiled from.
func (p *Prepared) Netlist() *Netlist { return p.net }

// Voltages exposes the solved node-voltage vector, indexed by node id
// (ground is not included — it is identically 0). Treat it as read-only:
// it backs the Solution's V queries. Its main use is feeding one solve's
// result into the next Prepared.Solve as a warm start.
func (s *Solution) Voltages() []float64 { return s.v }

func (p *Prepared) compile() error {
	mPrepCompiles.Add(1)
	n := p.net
	nn := n.numNodes
	p.nNodes = nn
	p.counts = n.elementCounts()
	p.parActive = make([]bool, len(n.converters))
	for i, c := range n.converters {
		p.parActive[i] = c.gPar > 0
	}
	p.kind, p.tol, p.maxIter = p.opts.resolve(nn)
	p.skySym, p.skyF = nil, nil
	p.ndSym, p.ndF = nil, nil
	p.icSym, p.icF, p.icOK = nil, nil, false
	p.amg, p.amgOK = nil, false
	p.jac = nil
	p.factored = false
	p.valsDirty = false
	if nn == 0 {
		p.a, p.am, p.coo, p.rhs = nil, nil, nil, nil
		return nil
	}
	if err := n.CheckConnectivity(); err != nil {
		return err
	}
	b := sparse.NewBuilder(nn)
	n.stampMatrix(b)
	// The builder's value stream is exactly what a valueWriter replay would
	// produce (same Add order, same zero-skip), so the canonical COO value
	// array is seeded by copy instead of a second stamping pass.
	p.coo = append(p.coo[:0:0], b.CooValues()...)
	p.a, p.am = b.ToCSRIndexed()
	p.rhs = make([]float64, nn)

	switch p.kind {
	case Direct:
		p.skySym = sparse.NewSkylineSymbolic(p.a)
	case DirectSparseND:
		sym, err := sparse.NewSparseCholSymbolic(p.a, sparse.OrderND)
		if err != nil {
			return err
		}
		p.ndSym = sym
	case PCGIC0:
		// A structural IC(0) failure means the fresh path would fall back
		// to Jacobi on every solve; the prepared path mirrors that.
		if sym, err := sparse.NewIC0Symbolic(p.a); err == nil {
			p.icSym = sym
		}
		p.ws = sparse.NewPCGWorkspace(nn)
		p.ws.SetWorkers(p.opts.kernelWorkers())
	case PCGJacobi, PCGAMG:
		// AMG has no symbolic/numeric split: the hierarchy depends on the
		// matrix values, so it is (re)built whole in refactor.
		p.ws = sparse.NewPCGWorkspace(nn)
		p.ws.SetWorkers(p.opts.kernelWorkers())
	default:
		return fmt.Errorf("circuit: unknown solver kind %d", p.kind)
	}
	return nil
}

func (n *Netlist) elementCounts() [7]int {
	return [7]int{
		len(n.resistors), len(n.ties), len(n.loads), len(n.converters),
		len(n.caps), len(n.inductors), len(n.tloads),
	}
}

// structureChanged reports whether the netlist's sparsity structure has
// drifted from what was compiled: element or node counts, or a converter
// parasitic shunt switching between zero and nonzero (which adds/removes
// matrix entries).
func (p *Prepared) structureChanged() bool {
	n := p.net
	if n.numNodes != p.nNodes || n.elementCounts() != p.counts {
		return true
	}
	for i, c := range n.converters {
		if (c.gPar > 0) != p.parActive[i] {
			return true
		}
	}
	return false
}

// SetResistor changes the identified resistor's resistance.
func (p *Prepared) SetResistor(id ResistorID, ohms float64) {
	if ohms <= 0 {
		panic(fmt.Sprintf("circuit: resistor must be positive, got %g", ohms))
	}
	r := &p.net.resistors[id]
	if g := 1 / ohms; r.g != g {
		r.g = g
		p.valsDirty = true
	}
}

// SetTieRail changes the identified tie's rail voltage (RHS-only: no
// restamp or refactor needed).
func (p *Prepared) SetTieRail(id TieID, volts float64) {
	p.net.ties[id].vRail = volts
}

// SetLoad changes the identified load's current draw (RHS-only).
func (p *Prepared) SetLoad(id LoadID, amps float64) {
	p.net.loads[id].i = amps
}

// SetConverter changes the identified converter's series resistance and
// parasitic shunt. A gPar transition between zero and nonzero changes the
// sparsity structure and triggers a recompile on the next Solve.
func (p *Prepared) SetConverter(id ConverterID, rSeries, gPar float64) {
	if rSeries <= 0 {
		panic(fmt.Sprintf("circuit: converter series resistance must be positive, got %g", rSeries))
	}
	if gPar < 0 {
		panic("circuit: negative parasitic conductance")
	}
	c := &p.net.converters[id]
	if g := 1 / rSeries; c.gSeries != g || c.gPar != gPar {
		c.gSeries = g
		c.gPar = gPar
		p.valsDirty = true
	}
}

// InvalidateValues marks all element values as changed. Call it after
// mutating the netlist directly instead of through the Set* methods.
func (p *Prepared) InvalidateValues() { p.valsDirty = true }

// Solve solves the network with the current element values. x0, if
// non-nil, is a warm-start voltage vector (length NumNodes) used by the
// iterative solver kinds; direct kinds ignore it. With x0 == nil the
// returned Solution is bit-identical to a fresh Netlist.Solve.
func (p *Prepared) Solve(x0 []float64) (*Solution, error) {
	return p.SolveSpan(nil, x0)
}

// SolveSpan is Solve with an optional parent trace span: the restamp,
// factor (including AMG hierarchy rebuilds) and PCG phases are recorded as
// child spans of sp. A nil sp (tracing off) adds no work and no
// allocations, and the solve result is identical either way.
func (p *Prepared) SolveSpan(sp *telemetry.Span, x0 []float64) (*Solution, error) {
	mPrepSolves.Add(1)
	if err := p.ensureCurrentSpan(sp); err != nil {
		return nil, err
	}
	n := p.net
	nn := p.nNodes
	if nn == 0 {
		return &Solution{net: n}, nil
	}
	if x0 != nil && len(x0) != nn {
		panic(fmt.Sprintf("circuit: warm start length %d, want %d nodes", len(x0), nn))
	}
	n.stampRHS(p.rhs)

	sol := &Solution{net: n}
	switch p.kind {
	case Direct:
		sol.v = p.skyF.Solve(p.rhs)
	case DirectSparseND:
		sol.v = p.ndF.Solve(p.rhs)
	case PCGIC0, PCGJacobi, PCGAMG:
		prec := p.preconditioner()
		if x0 != nil {
			mPrepWarmStarts.Add(1)
		}
		spPCG := sp.Start("pcg")
		x, res, err := sparse.PCGW(p.a, p.rhs, x0, prec, p.tol, p.maxIter, p.ws)
		spPCG.End()
		if err != nil {
			return nil, err
		}
		sol.v = x
		sol.Iterations = res.Iterations
		sol.Residual = res.Residual
		sol.ConvTrace = res.Trace
		sol.Health = res.Health
	default:
		return nil, fmt.Errorf("circuit: unknown solver kind %d", p.kind)
	}
	return sol, nil
}

// ensureCurrent brings the engine in sync with the netlist: recompile on
// structure drift, restamp matrix values if dirty, and renew the numeric
// factorization. After it returns nil the cached factor matches the
// netlist's current matrix-bearing values.
func (p *Prepared) ensureCurrent() error { return p.ensureCurrentSpan(nil) }

// ensureCurrentSpan is ensureCurrent with the restamp and factor phases
// recorded as child spans of sp (nil-safe).
func (p *Prepared) ensureCurrentSpan(sp *telemetry.Span) error {
	if p.structureChanged() {
		mPrepRecompiles.Add(1)
		if telemetry.EventsEnabled() {
			telemetry.Event(slog.LevelInfo, "circuit: prepared engine recompile",
				slog.String("cause", "structure sentinel"),
				slog.Int("nodes", p.nNodes))
		}
		if err := p.compile(); err != nil {
			return err
		}
	}
	if p.nNodes == 0 {
		return nil
	}
	if p.valsDirty {
		mPrepRestamps.Add(1)
		spR := sp.Start("restamp")
		w := &valueWriter{dst: p.coo}
		p.net.stampMatrix(w)
		if w.bad || w.pos != len(p.coo) {
			spR.End()
			// Structure drifted in a way the sentinels missed; rebuild.
			mPrepRecompiles.Add(1)
			if telemetry.EventsEnabled() {
				telemetry.Event(slog.LevelWarn, "circuit: prepared engine recompile",
					slog.String("cause", "value-stream drift"),
					slog.Int("nodes", p.nNodes))
			}
			if err := p.compile(); err != nil {
				return err
			}
		} else {
			p.am.Fold(p.coo, p.a.Values())
			p.valsDirty = false
			p.factored = false
			spR.End()
		}
	}
	if !p.factored {
		spF := sp.Start("factor")
		err := p.refactor(spF)
		spF.End()
		if err != nil {
			return err
		}
		p.factored = true
	}
	return nil
}

// refactor renews the numeric factorization (or preconditioner) on the
// cached symbolic structure for the current matrix values. sp (nil-safe)
// parents the AMG hierarchy-rebuild span.
func (p *Prepared) refactor(sp *telemetry.Span) error {
	switch p.kind {
	case Direct:
		f, err := p.skySym.Refactor(p.a, p.skyF)
		if err != nil {
			return wrapSPD(err)
		}
		p.skyF = f
	case DirectSparseND:
		f, err := p.ndSym.Refactor(p.a, p.ndF)
		if err != nil {
			return wrapSPD(err)
		}
		p.ndF = f
	case PCGIC0:
		p.icOK = false
		if p.icSym != nil {
			if ic, err := p.icSym.Factor(p.a, p.icF); err == nil {
				ic.SetWorkers(p.opts.kernelWorkers())
				p.icF = ic
				p.icOK = true
			}
		}
		if !p.icOK {
			p.jac = sparse.NewJacobi(p.a)
		}
	case PCGAMG:
		// The hierarchy is value-dependent, so it is rebuilt from the
		// restamped matrix — exactly what the fresh path computes, keeping
		// prepared ≡ fresh bit-identical.
		p.amg, p.amgOK = nil, false
		spA := sp.Start("amg-build")
		mg, err := sparse.NewAMG(p.a, sparse.AMGOptions{Workers: p.opts.kernelWorkers()})
		spA.End()
		if err == nil {
			p.amg = mg
			p.amgOK = true
		}
		if !p.amgOK {
			p.jac = sparse.NewJacobi(p.a)
		}
	case PCGJacobi:
		p.jac = sparse.NewJacobi(p.a)
	}
	return nil
}

// preconditioner returns the active preconditioner for the compiled
// iterative kind, honoring the per-kind fallback to Jacobi.
func (p *Prepared) preconditioner() sparse.Preconditioner {
	switch {
	case p.kind == PCGIC0 && p.icOK:
		return p.icF
	case p.kind == PCGAMG && p.amgOK:
		return p.amg
	default:
		return p.jac
	}
}
