// Package circuit builds and solves resistive modified-nodal-analysis (MNA)
// networks: resistors, DC load current sources, rail ties (a resistor to an
// ideal voltage rail, used for C4 pads), and ideal 2:1 switched-capacitor
// converter elements.
//
// The 2:1 converter with terminals (top, bottom, mid) obeys
// Vmid = (Vtop+Vbottom)/2 behind a series resistance. Substituting the
// branch current into the KCL rows yields the symmetric positive
// semidefinite contribution G·vvᵀ with v = (1/2, 1/2, -1), so the global
// conductance matrix remains SPD and every network assembled here can be
// solved with Cholesky or preconditioned conjugate gradients.
package circuit

import (
	"errors"
	"fmt"

	"voltstack/internal/parallel"
	"voltstack/internal/sparse"
)

// Ground is the reference node. Its potential is exactly 0.
const Ground = -1

// ResistorID identifies a resistor for current extraction.
type ResistorID int

// TieID identifies a rail tie for current extraction.
type TieID int

// LoadID identifies a load current source.
type LoadID int

// ConverterID identifies a 2:1 converter element.
type ConverterID int

type resistor struct {
	a, b int
	g    float64 // conductance
}

type railTie struct {
	node  int
	g     float64 // pad conductance
	vRail float64
}

type load struct {
	from, to int // current i flows out of from, into to (through the load)
	i        float64
}

type converter struct {
	top, bottom, mid int
	gSeries          float64 // 1/RSERIES
	gPar             float64 // parasitic shunt across (top, bottom)
}

// Netlist is a mutable network description. Allocate nodes with Node, add
// elements, then call Solve (DC) or Transient.
type Netlist struct {
	numNodes   int
	resistors  []resistor
	ties       []railTie
	loads      []load
	converters []converter
	caps       []capacitor
	inductors  []inductor
	tloads     []tload
}

// New returns an empty netlist.
func New() *Netlist { return &Netlist{} }

// Node allocates and returns a new node index.
func (n *Netlist) Node() int {
	id := n.numNodes
	n.numNodes++
	return id
}

// Nodes allocates k new nodes and returns their indices.
func (n *Netlist) Nodes(k int) []int {
	ids := make([]int, k)
	for i := range ids {
		ids[i] = n.Node()
	}
	return ids
}

// NumNodes returns the number of allocated (non-ground) nodes.
func (n *Netlist) NumNodes() int { return n.numNodes }

func (n *Netlist) checkNode(node int) {
	if node < Ground || node >= n.numNodes {
		panic(fmt.Sprintf("circuit: node %d out of range (have %d nodes)", node, n.numNodes))
	}
}

// AddResistor connects nodes a and b with a resistor of the given value in
// ohms and returns an identifier usable with Solution.ResistorCurrent.
func (n *Netlist) AddResistor(a, b int, ohms float64) ResistorID {
	n.checkNode(a)
	n.checkNode(b)
	if ohms <= 0 {
		panic(fmt.Sprintf("circuit: resistor must be positive, got %g", ohms))
	}
	if a == b {
		panic("circuit: resistor endpoints must differ")
	}
	n.resistors = append(n.resistors, resistor{a, b, 1 / ohms})
	return ResistorID(len(n.resistors) - 1)
}

// AddRailTie connects node to an ideal rail at volts through a resistance of
// ohms (e.g. a C4 pad). Returns an identifier for current extraction.
func (n *Netlist) AddRailTie(node int, ohms, volts float64) TieID {
	n.checkNode(node)
	if node == Ground {
		panic("circuit: cannot tie ground to a rail")
	}
	if ohms <= 0 {
		panic(fmt.Sprintf("circuit: tie resistance must be positive, got %g", ohms))
	}
	n.ties = append(n.ties, railTie{node, 1 / ohms, volts})
	return TieID(len(n.ties) - 1)
}

// AddLoad adds an ideal DC load drawing amps from node `from` and returning
// it into node `to` (usually the local ground net). This is the VoltSpot
// ideal-current-source load model.
func (n *Netlist) AddLoad(from, to int, amps float64) LoadID {
	n.checkNode(from)
	n.checkNode(to)
	n.loads = append(n.loads, load{from, to, amps})
	return LoadID(len(n.loads) - 1)
}

// AddConverter2to1 adds an ideal push-pull 2:1 SC converter across
// (top, bottom) with output mid, series resistance rSeries ohms, and a
// parasitic shunt conductance gPar (siemens) across (top, bottom) that
// models frequency-dependent switching losses. gPar may be zero.
func (n *Netlist) AddConverter2to1(top, bottom, mid int, rSeries, gPar float64) ConverterID {
	n.checkNode(top)
	n.checkNode(bottom)
	n.checkNode(mid)
	if rSeries <= 0 {
		panic(fmt.Sprintf("circuit: converter series resistance must be positive, got %g", rSeries))
	}
	if gPar < 0 {
		panic("circuit: negative parasitic conductance")
	}
	n.converters = append(n.converters, converter{top, bottom, mid, 1 / rSeries, gPar})
	return ConverterID(len(n.converters) - 1)
}

// SolverKind selects the linear solver used by Solve.
type SolverKind int

const (
	// Auto picks Direct for small systems and PCGIC0 for large ones.
	Auto SolverKind = iota
	// Direct uses the RCM-ordered skyline Cholesky factorization.
	Direct
	// PCGIC0 uses conjugate gradients with an IC(0) preconditioner.
	PCGIC0
	// PCGJacobi uses conjugate gradients with a Jacobi preconditioner.
	PCGJacobi
	// DirectSparseND uses the general sparse Cholesky factorization with
	// nested-dissection ordering — lower memory than Direct on 3D meshes.
	DirectSparseND
	// PCGAMG uses conjugate gradients with an aggregation-based algebraic
	// multigrid preconditioner — near-mesh-independent iteration counts on
	// grids where IC(0) stalls.
	PCGAMG
)

// SolveOptions tunes the linear solve. The zero value is a good default.
type SolveOptions struct {
	Solver  SolverKind
	Tol     float64 // relative residual target for iterative solvers (default 1e-10)
	MaxIter int     // iteration budget (default 20*n)

	// Workers parallelizes the kernels inside one iterative solve (SpMV,
	// reductions, IC(0) triangular sweeps, AMG V-cycles). 0 keeps the
	// historical serial path, > 0 asks for exactly that many workers, and
	// < 0 selects the machine default (VOLTSTACK_WORKERS, else GOMAXPROCS).
	// Solutions are bit-identical at every setting.
	Workers int
}

// kernelWorkers resolves the Workers knob into a concrete worker count.
func (o SolveOptions) kernelWorkers() int {
	switch {
	case o.Workers > 0:
		return o.Workers
	case o.Workers < 0:
		return parallel.DefaultWorkers()
	default:
		return 1
	}
}

// directThreshold is the node count below which Auto picks the direct solver.
const directThreshold = 4000

// amgThreshold is the node count above which Auto switches from IC(0) to
// AMG preconditioning: IC(0)'s iteration count grows with mesh diameter
// while the multigrid V-cycle keeps it near-constant, and past a few
// hundred thousand nodes that crossover dominates the higher per-iteration
// cost of the V-cycle.
const amgThreshold = 200_000

// ErrFloating is returned when the network has no DC path from some node to
// ground or a rail, which makes the conductance matrix singular.
var ErrFloating = errors.New("circuit: network has floating nodes (no path to ground or a rail)")

// Solution holds solved node voltages and provides element-level queries.
type Solution struct {
	net *Netlist
	v   []float64
	// Stats from the linear solve.
	Iterations int
	Residual   float64
	// ConvTrace is the solver's per-iteration convergence trajectory,
	// populated only while the flight recorder is on; nil otherwise.
	ConvTrace *sparse.SolveTrace
	// Health is the solver-health report (condition estimate, detector
	// verdicts), populated only while convergence probes are on; nil
	// otherwise. Voltages are byte-identical either way.
	Health *sparse.ConvergenceReport
}

// CheckConnectivity verifies that every node has a conductive path to
// ground or to a rail tie, the condition for the conductance matrix to be
// nonsingular. Returns ErrFloating with the number of floating nodes.
func (n *Netlist) CheckConnectivity() error {
	// Union-find over nodes plus a virtual root for ground/rails.
	parent := make([]int, n.numNodes+1)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	root := n.numNodes // ground/rail component
	idx := func(node int) int {
		if node == Ground {
			return root
		}
		return node
	}
	union := func(a, b int) {
		ra, rb := find(idx(a)), find(idx(b))
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, r := range n.resistors {
		union(r.a, r.b)
	}
	for _, t := range n.ties {
		union(t.node, Ground)
	}
	for _, c := range n.converters {
		union(c.top, c.mid)
		union(c.bottom, c.mid)
	}
	for _, c := range n.caps {
		union(c.a, c.b)
	}
	for _, l := range n.inductors {
		union(l.a, l.b)
	}
	floating := 0
	for i := 0; i < n.numNodes; i++ {
		if find(i) != find(root) {
			floating++
		}
	}
	if floating > 0 {
		return fmt.Errorf("%w: %d of %d nodes", ErrFloating, floating, n.numNodes)
	}
	return nil
}

// resolve fills in the defaults of SolveOptions for an nn-node system.
func (o SolveOptions) resolve(nn int) (kind SolverKind, tol float64, maxIter int) {
	kind = o.Solver
	if kind == Auto {
		switch {
		case nn <= directThreshold:
			kind = Direct
		case nn <= amgThreshold:
			kind = PCGIC0
		default:
			kind = PCGAMG
		}
	}
	tol = o.Tol
	if tol == 0 {
		tol = 1e-10
	}
	maxIter = o.MaxIter
	if maxIter == 0 {
		maxIter = 20 * nn
		if maxIter < 1000 {
			maxIter = 1000
		}
	}
	return kind, tol, maxIter
}

// wrapSPD maps a factorization positive-definiteness failure onto the
// circuit-level floating-network error.
func wrapSPD(err error) error {
	if errors.Is(err, sparse.ErrNotPositiveDefinite) {
		return fmt.Errorf("%w: %v", ErrFloating, err)
	}
	return err
}

// adder receives matrix stamps. *sparse.Builder implements it for
// assembly; the prepared-solve engine substitutes a value-only writer to
// restamp without rebuilding structure.
type adder interface {
	Add(i, j int, v float64)
}

// stampMatrix stamps every matrix-bearing element into b in the canonical
// element order (resistors, ties, converters, inductors). Both the fresh
// Solve path and the prepared engine go through this single routine, which
// is what keeps their assemblies bit-identical.
func (n *Netlist) stampMatrix(b adder) {
	for _, r := range n.resistors {
		stampConductance(b, r.a, r.b, r.g)
	}
	for _, t := range n.ties {
		b.Add(t.node, t.node, t.g)
	}
	for _, c := range n.converters {
		stampConverter(b, c)
	}
	// DC treatment of dynamic elements: capacitors are open circuits,
	// inductors near-ideal shorts.
	for _, l := range n.inductors {
		stampConductance(b, l.a, l.b, 1/RIndDC)
	}
}

// stampRHS writes the right-hand side (rail injections, DC loads, and the
// t=0 value of transient loads) into rhs, zeroing it first.
func (n *Netlist) stampRHS(rhs []float64) {
	for i := range rhs {
		rhs[i] = 0
	}
	for _, t := range n.ties {
		rhs[t.node] += t.g * t.vRail
	}
	for _, l := range n.loads {
		if l.from != Ground {
			rhs[l.from] -= l.i
		}
		if l.to != Ground {
			rhs[l.to] += l.i
		}
	}
	for _, tl := range n.tloads {
		i := tl.fn(0)
		if tl.from != Ground {
			rhs[tl.from] -= i
		}
		if tl.to != Ground {
			rhs[tl.to] += i
		}
	}
}

// Solve assembles the conductance matrix and solves for all node voltages.
func (n *Netlist) Solve(opts SolveOptions) (*Solution, error) {
	nn := n.numNodes
	if nn == 0 {
		return &Solution{net: n}, nil
	}
	if err := n.CheckConnectivity(); err != nil {
		return nil, err
	}
	b := sparse.NewBuilder(nn)
	n.stampMatrix(b)
	rhs := make([]float64, nn)
	n.stampRHS(rhs)

	a := b.ToCSR()
	sol := &Solution{net: n}

	kind, tol, maxIter := opts.resolve(nn)

	switch kind {
	case Direct:
		f, err := sparse.FactorCholesky(a)
		if err != nil {
			return nil, wrapSPD(err)
		}
		sol.v = f.Solve(rhs)
	case DirectSparseND:
		f, err := sparse.FactorSparse(a, sparse.OrderND)
		if err != nil {
			return nil, wrapSPD(err)
		}
		sol.v = f.Solve(rhs)
	case PCGIC0, PCGJacobi, PCGAMG:
		workers := opts.kernelWorkers()
		var prec sparse.Preconditioner
		switch kind {
		case PCGIC0:
			if ic, err := sparse.NewIC0(a); err == nil {
				ic.SetWorkers(workers)
				prec = ic
			} else {
				prec = sparse.NewJacobi(a)
			}
		case PCGAMG:
			// Mirror the IC(0) discipline: a hierarchy build failure falls
			// back to Jacobi rather than failing the solve.
			if mg, err := sparse.NewAMG(a, sparse.AMGOptions{Workers: workers}); err == nil {
				prec = mg
			} else {
				prec = sparse.NewJacobi(a)
			}
		default:
			prec = sparse.NewJacobi(a)
		}
		ws := sparse.NewPCGWorkspace(nn)
		ws.SetWorkers(workers)
		x, res, err := sparse.PCGW(a, rhs, nil, prec, tol, maxIter, ws)
		if err != nil {
			return nil, err
		}
		sol.v = x
		sol.Iterations = res.Iterations
		sol.Residual = res.Residual
		sol.ConvTrace = res.Trace
		sol.Health = res.Health
	default:
		return nil, fmt.Errorf("circuit: unknown solver kind %d", kind)
	}
	return sol, nil
}

func stampConductance(b adder, i, j int, g float64) {
	if i != Ground {
		b.Add(i, i, g)
	}
	if j != Ground {
		b.Add(j, j, g)
	}
	if i != Ground && j != Ground {
		b.Add(i, j, -g)
		b.Add(j, i, -g)
	}
}

// stampConverter adds G·vvᵀ over (top, bottom, mid) with v = (1/2, 1/2, -1),
// plus the parasitic shunt across (top, bottom).
func stampConverter(b adder, c converter) {
	nodes := [3]int{c.top, c.bottom, c.mid}
	coef := [3]float64{0.5, 0.5, -1}
	for i := 0; i < 3; i++ {
		if nodes[i] == Ground {
			continue
		}
		for j := 0; j < 3; j++ {
			if nodes[j] == Ground {
				continue
			}
			b.Add(nodes[i], nodes[j], c.gSeries*coef[i]*coef[j])
		}
	}
	if c.gPar > 0 {
		stampConductance(b, c.top, c.bottom, c.gPar)
	}
}

// V returns the solved potential of node (0 for Ground).
func (s *Solution) V(node int) float64 {
	if node == Ground {
		return 0
	}
	return s.v[node]
}

// ResistorCurrent returns the current flowing from terminal a to terminal b
// of the identified resistor.
func (s *Solution) ResistorCurrent(id ResistorID) float64 {
	r := s.net.resistors[id]
	return (s.V(r.a) - s.V(r.b)) * r.g
}

// TieCurrent returns the current flowing from the rail into the tied node.
func (s *Solution) TieCurrent(id TieID) float64 {
	t := s.net.ties[id]
	return (t.vRail - s.V(t.node)) * t.g
}

// ConverterOutputCurrent returns the current the identified converter
// delivers into its mid node (negative when sinking).
func (s *Solution) ConverterOutputCurrent(id ConverterID) float64 {
	c := s.net.converters[id]
	return c.gSeries * ((s.V(c.top)+s.V(c.bottom))/2 - s.V(c.mid))
}

// ConverterConductionLoss returns the J²·RSERIES loss of one converter.
func (s *Solution) ConverterConductionLoss(id ConverterID) float64 {
	c := s.net.converters[id]
	j := s.ConverterOutputCurrent(id)
	return j * j / c.gSeries
}

// ConverterParasiticLoss returns the switching/parasitic shunt loss of one
// converter.
func (s *Solution) ConverterParasiticLoss(id ConverterID) float64 {
	c := s.net.converters[id]
	dv := s.V(c.top) - s.V(c.bottom)
	return c.gPar * dv * dv
}

// LoadVoltage returns the voltage across the identified load (V(from)-V(to)).
func (s *Solution) LoadVoltage(id LoadID) float64 {
	l := s.net.loads[id]
	return s.V(l.from) - s.V(l.to)
}

// LoadPower returns the power absorbed by the identified load.
func (s *Solution) LoadPower(id LoadID) float64 {
	l := s.net.loads[id]
	return l.i * s.LoadVoltage(id)
}

// TotalLoadPower sums the power absorbed by all loads.
func (s *Solution) TotalLoadPower() float64 {
	var p float64
	for id := range s.net.loads {
		p += s.LoadPower(LoadID(id))
	}
	return p
}

// TotalInputPower sums the power delivered by all rails: Σ Vrail · Itie.
func (s *Solution) TotalInputPower() float64 {
	var p float64
	for id, t := range s.net.ties {
		p += t.vRail * s.TieCurrent(TieID(id))
	}
	return p
}

// TotalResistorLoss sums I²R dissipation over resistors and rail ties.
func (s *Solution) TotalResistorLoss() float64 {
	var p float64
	for _, r := range s.net.resistors {
		dv := s.V(r.a) - s.V(r.b)
		p += dv * dv * r.g
	}
	for _, t := range s.net.ties {
		dv := t.vRail - s.V(t.node)
		p += dv * dv * t.g
	}
	return p
}

// TotalConverterLoss sums conduction plus parasitic losses over converters.
func (s *Solution) TotalConverterLoss() float64 {
	var p float64
	for id := range s.net.converters {
		p += s.ConverterConductionLoss(ConverterID(id))
		p += s.ConverterParasiticLoss(ConverterID(id))
	}
	return p
}

// EnergyBalanceError returns the relative mismatch between input power and
// the sum of load power and all losses — a solver sanity metric that should
// be at the solve tolerance.
func (s *Solution) EnergyBalanceError() float64 {
	in := s.TotalInputPower()
	out := s.TotalLoadPower() + s.TotalResistorLoss() + s.TotalConverterLoss()
	if in == 0 && out == 0 {
		return 0
	}
	denom := in
	if denom < 0 {
		denom = -denom
	}
	if denom == 0 {
		denom = 1
	}
	diff := in - out
	if diff < 0 {
		diff = -diff
	}
	return diff / denom
}
