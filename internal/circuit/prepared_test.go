package circuit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// allKinds are the concrete solver kinds plus Auto.
var allKinds = []SolverKind{Auto, Direct, DirectSparseND, PCGIC0, PCGJacobi}

func sameSolution(t *testing.T, label string, fresh, prep *Solution, nn int) {
	t.Helper()
	if fresh.Iterations != prep.Iterations {
		t.Fatalf("%s: iterations %d vs %d", label, fresh.Iterations, prep.Iterations)
	}
	if math.Float64bits(fresh.Residual) != math.Float64bits(prep.Residual) {
		t.Fatalf("%s: residual %v vs %v", label, fresh.Residual, prep.Residual)
	}
	for i := 0; i < nn; i++ {
		if math.Float64bits(fresh.V(i)) != math.Float64bits(prep.V(i)) {
			t.Fatalf("%s: node %d: %v vs %v (bitwise)", label, i, fresh.V(i), prep.V(i))
		}
	}
}

func TestPreparedMatchesFreshAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		rng := rand.New(rand.NewSource(42))
		n := randomStackNetwork(rng)
		opts := SolveOptions{Solver: kind}
		fresh, err := n.Solve(opts)
		if err != nil {
			t.Fatalf("kind %d: fresh: %v", kind, err)
		}
		p, err := n.Compile(opts)
		if err != nil {
			t.Fatalf("kind %d: compile: %v", kind, err)
		}
		// Repeat solves must all match (factor reuse does not drift).
		for rep := 0; rep < 3; rep++ {
			got, err := p.Solve(nil)
			if err != nil {
				t.Fatalf("kind %d rep %d: prepared: %v", kind, rep, err)
			}
			sameSolution(t, "prepared", fresh, got, n.NumNodes())
		}
	}
}

func TestPreparedSettersMatchFresh(t *testing.T) {
	// After changing converter values, load currents, tie rails, and a
	// resistor through the prepared engine, the solve must be bit-identical
	// to a fresh netlist built with the new values.
	for _, kind := range []SolverKind{Direct, DirectSparseND, PCGIC0, PCGJacobi} {
		rng := rand.New(rand.NewSource(7))
		n := randomStackNetwork(rng)
		opts := SolveOptions{Solver: kind}
		p, err := n.Compile(opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Solve(nil); err != nil {
			t.Fatal(err)
		}
		// Perturb every element class.
		for id := range n.converters {
			c := n.converters[id]
			p.SetConverter(ConverterID(id), 1/(c.gSeries*1.3), c.gPar*0.7)
		}
		for id := range n.loads {
			p.SetLoad(LoadID(id), n.loads[id].i*1.1)
		}
		for id := range n.ties {
			p.SetTieRail(TieID(id), n.ties[id].vRail*0.95)
		}
		p.SetResistor(ResistorID(0), 1/n.resistors[0].g*2)

		got, err := p.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := n.Solve(opts) // same netlist: setters mutated it in place
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, "after-setters", fresh, got, n.NumNodes())
	}
}

func TestPreparedRestampProperty(t *testing.T) {
	// Random conductance perturbations through the setters keep the
	// prepared solve bit-identical to a from-scratch solve.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomStackNetwork(rng)
		opts := SolveOptions{Solver: Direct}
		p, err := n.Compile(opts)
		if err != nil {
			return false
		}
		for round := 0; round < 3; round++ {
			for id := range n.resistors {
				if rng.Intn(2) == 0 {
					p.SetResistor(ResistorID(id), (0.01+rng.Float64()*0.2)*1)
				}
			}
			for id := range n.converters {
				if rng.Intn(2) == 0 {
					p.SetConverter(ConverterID(id), 0.3+rng.Float64(), rng.Float64()*1e-3)
				}
			}
			got, err := p.Solve(nil)
			if err != nil {
				return false
			}
			fresh, err := n.Solve(opts)
			if err != nil {
				return false
			}
			for i := 0; i < n.NumNodes(); i++ {
				if math.Float64bits(fresh.V(i)) != math.Float64bits(got.V(i)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPreparedGParZeroTransitionRecompiles(t *testing.T) {
	// Driving a converter's parasitic shunt to zero removes matrix entries;
	// the engine must detect the structure change and still match fresh.
	rng := rand.New(rand.NewSource(3))
	n := randomStackNetwork(rng)
	p, err := n.Compile(SolveOptions{Solver: Direct})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(nil); err != nil {
		t.Fatal(err)
	}
	for id := range n.converters {
		c := n.converters[id]
		p.SetConverter(ConverterID(id), 1/c.gSeries, 0)
	}
	got, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := n.Solve(SolveOptions{Solver: Direct})
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "gpar-zero", fresh, got, n.NumNodes())

	// And back to nonzero.
	for id := range n.converters {
		c := n.converters[id]
		p.SetConverter(ConverterID(id), 1/c.gSeries, 1e-4)
	}
	got, err = p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err = n.Solve(SolveOptions{Solver: Direct})
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "gpar-back", fresh, got, n.NumNodes())
}

func TestPreparedTopologyGrowthRecompiles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := randomStackNetwork(rng)
	p, err := n.Compile(SolveOptions{Solver: Direct})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(nil); err != nil {
		t.Fatal(err)
	}
	// Add a node and elements out-of-band.
	nd := n.Node()
	n.AddResistor(nd, 0, 0.5)
	n.AddLoad(nd, Ground, 0.1)
	got, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := n.Solve(SolveOptions{Solver: Direct})
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "growth", fresh, got, n.NumNodes())
}

func TestPreparedWarmStartConverges(t *testing.T) {
	// A warm start from the exact solution must converge immediately (0
	// iterations) and still return that solution.
	rng := rand.New(rand.NewSource(9))
	n := randomStackNetwork(rng)
	opts := SolveOptions{Solver: PCGIC0}
	p, err := n.Compile(opts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, n.NumNodes())
	for i := range x0 {
		x0[i] = cold.V(i)
	}
	warm, err := p.Solve(x0)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > cold.Iterations {
		t.Fatalf("warm start took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
	for i := 0; i < n.NumNodes(); i++ {
		if math.Abs(warm.V(i)-cold.V(i)) > 1e-8 {
			t.Fatalf("warm solution drifted at node %d: %v vs %v", i, warm.V(i), cold.V(i))
		}
	}
}

func TestPreparedEmptyNetlist(t *testing.T) {
	n := New()
	p, err := n.Compile(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.V(Ground) != 0 {
		t.Fatal("ground must be 0")
	}
}
