// Multi-RHS solves on the prepared engine: one structure check, one value
// restamp, one numeric refactor — then every right-hand side of the batch
// is solved against the shared factorization or preconditioner. This is
// the circuit-level face of sparse's batch API, and the amortization it
// buys is what makes sweep points and Monte Carlo trial batches cheap.
package circuit

import (
	"fmt"

	"voltstack/internal/sparse"
	"voltstack/internal/telemetry"
)

var (
	mPrepBatchSolves = telemetry.NewCounter("circuit_prepared_batch_solves_total")
	mPrepBatchLanes  = telemetry.NewCounter("circuit_prepared_batch_lanes_total")
)

// SolveBatch solves the network k times under k RHS-only variations.
// Before stamping entry i's right-hand side it calls setRHS(i), which must
// mutate only RHS-bearing state (load currents, rail voltages) — changing
// matrix-bearing values (resistances, converters) between entries would
// desynchronize the lanes from the shared factorization and is not
// checked. x0s supplies optional per-entry warm starts for the iterative
// kinds (nil, or length k with nil entries allowed); workers is one budget
// composed across lanes and intra-solve kernels — up to min(k, workers)
// lanes run concurrently and each lane's kernels get the remaining factor
// (< 1 selects the default; see sparse.PCGBatch).
//
// Lane i is bit-identical to calling setRHS(i) followed by Solve(x0s[i]).
// The returned Solutions share the engine's netlist, so element-level
// queries (LoadPower, TieCurrent, …) on Solutions[i] read whatever element
// values the netlist holds at query time: re-apply entry i's values (or
// query immediately inside a setRHS-style loop) before using them. The
// voltage vectors themselves are private per lane.
func (p *Prepared) SolveBatch(k int, setRHS func(i int), x0s [][]float64, workers int) ([]*Solution, error) {
	mPrepBatchSolves.Add(1)
	mPrepBatchLanes.Add(int64(k))
	if x0s != nil && len(x0s) != k {
		panic(fmt.Sprintf("circuit: SolveBatch warm-start count %d, want %d", len(x0s), k))
	}
	if err := p.ensureCurrent(); err != nil {
		return nil, err
	}
	n := p.net
	nn := p.nNodes
	sols := make([]*Solution, k)
	if nn == 0 {
		for i := range sols {
			sols[i] = &Solution{net: n}
		}
		return sols, nil
	}
	rhss := make([][]float64, k)
	for i := 0; i < k; i++ {
		if setRHS != nil {
			setRHS(i)
		}
		n.stampRHS(p.rhs)
		rhss[i] = append([]float64(nil), p.rhs...)
	}

	switch p.kind {
	case Direct:
		for i, x := range p.skyF.SolveBatchWorkers(rhss, workers) {
			sols[i] = &Solution{net: n, v: x}
		}
	case DirectSparseND:
		for i, x := range p.ndF.SolveBatchWorkers(rhss, workers) {
			sols[i] = &Solution{net: n, v: x}
		}
	case PCGIC0, PCGJacobi, PCGAMG:
		if p.bws == nil {
			p.bws = sparse.NewPCGBatchWorkspace(nn, k)
		}
		if x0s != nil {
			for _, x0 := range x0s {
				if x0 != nil {
					mPrepWarmStarts.Add(1)
				}
			}
		}
		xs, results, err := sparse.PCGBatch(p.a, rhss, x0s, p.preconditioner(), p.tol, p.maxIter, p.bws, workers)
		if err != nil {
			return nil, err
		}
		for i, x := range xs {
			sols[i] = &Solution{
				net:        n,
				v:          x,
				Iterations: results[i].Iterations,
				Residual:   results[i].Residual,
				ConvTrace:  results[i].Trace,
				Health:     results[i].Health,
			}
		}
	default:
		return nil, fmt.Errorf("circuit: unknown solver kind %d", p.kind)
	}
	return sols, nil
}
