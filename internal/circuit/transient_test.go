package circuit

import (
	"math"
	"testing"

	"voltstack/internal/units"
)

func TestTransientRCStepResponse(t *testing.T) {
	// Series R-C driven by a 1 V rail: v(t) = 1 - exp(-t/RC).
	const r = 100.0
	const c = 1e-6
	n := New()
	out := n.Node()
	n.AddRailTie(out, r, 1.0)
	n.AddCapacitor(out, Ground, c)
	tau := r * c
	res, err := n.Transient(TransientOptions{DT: tau / 200, Steps: 1000}, []int{out})
	if err != nil {
		t.Fatal(err)
	}
	// InitDC=false: start from zero and charge up.
	for k, tm := range res.Times {
		want := 1 - math.Exp(-tm/tau)
		if math.Abs(res.V[0][k]-want) > 0.01 {
			t.Fatalf("t=%g: v=%g, want %g", tm, res.V[0][k], want)
		}
	}
}

func TestTransientRCDischarge(t *testing.T) {
	// Start from the DC point (1 V across the cap via a stiff tie), then
	// a transient load discharges it through the source resistance.
	const r = 10.0
	const c = 1e-6
	n := New()
	out := n.Node()
	n.AddRailTie(out, r, 1.0)
	n.AddCapacitor(out, Ground, c)
	// Constant 50 mA transient load switched on for t>0.
	n.AddTransientLoad(out, Ground, func(tm float64) float64 {
		if tm > 0 {
			return 0.05
		}
		return 0
	})
	tau := r * c
	res, err := n.Transient(TransientOptions{DT: tau / 100, Steps: 800, InitDC: true}, []int{out})
	if err != nil {
		t.Fatal(err)
	}
	if res.V[0][0] != 1.0 {
		t.Fatalf("DC init = %g, want 1.0", res.V[0][0])
	}
	// Final value: 1 - I*R = 0.5 V, approached exponentially.
	final := res.V[0][len(res.V[0])-1]
	if !units.ApproxEqual(final, 0.5, 0.01, 0.02) {
		t.Errorf("final = %g, want 0.5", final)
	}
	if res.MinV(0) < 0.49 {
		t.Errorf("undershoot to %g", res.MinV(0))
	}
}

func TestTransientRLRise(t *testing.T) {
	// Series R-L from a 1 V rail into a grounded resistor: current rises
	// with tau = L/Rtotal; node voltage across the load resistor follows.
	const rSrc = 1.0
	const rLoad = 1.0
	const l = 1e-6
	n := New()
	a := n.Node()
	out := n.Node()
	n.AddRailTie(a, rSrc, 1.0)
	n.AddInductor(a, out, l)
	n.AddResistor(out, Ground, rLoad)
	tau := l / (rSrc + rLoad)
	res, err := n.Transient(TransientOptions{DT: tau / 200, Steps: 1200}, []int{out})
	if err != nil {
		t.Fatal(err)
	}
	for k, tm := range res.Times {
		if k == 0 {
			continue
		}
		iWant := (1.0 / (rSrc + rLoad)) * (1 - math.Exp(-tm/tau))
		want := iWant * rLoad
		if math.Abs(res.V[0][k]-want) > 0.01 {
			t.Fatalf("t=%g: v=%g, want %g", tm, res.V[0][k], want)
		}
	}
}

func TestTransientRLCDroop(t *testing.T) {
	// The canonical PDN event: package L, pad R, on-die decap, load step.
	// The first droop must exceed the final IR level (inductive kick) and
	// ring toward the DC value.
	const rPkg = 5e-3 // enough damping to settle within the run
	const lPkg = 50e-12
	const cDie = 100e-9
	const iStep = 10.0
	n := New()
	board := n.Node()
	die := n.Node()
	n.AddRailTie(board, rPkg, 1.0)
	n.AddInductor(board, die, lPkg)
	n.AddCapacitor(die, Ground, cDie)
	n.AddResistor(die, Ground, 1e6) // leak keeps the DC point defined
	n.AddTransientLoad(die, Ground, func(tm float64) float64 {
		if tm > 0 {
			return iStep
		}
		return 0
	})
	dt := 10e-12
	res, err := n.Transient(TransientOptions{DT: dt, Steps: 12000, InitDC: true}, []int{die})
	if err != nil {
		t.Fatal(err)
	}
	finalDC := 1.0 - iStep*rPkg
	droop := res.MinV(0)
	if droop >= finalDC-1e-4 {
		t.Errorf("first droop %g should undershoot the DC level %g", droop, finalDC)
	}
	last := res.V[0][len(res.V[0])-1]
	if !units.ApproxEqual(last, finalDC, 5e-3, 1e-2) {
		t.Errorf("settled at %g, want %g", last, finalDC)
	}
}

func TestTransientMoreDecapLessDroop(t *testing.T) {
	run := func(c float64) float64 {
		n := New()
		board := n.Node()
		die := n.Node()
		n.AddRailTie(board, 1e-3, 1.0)
		n.AddInductor(board, die, 50e-12)
		n.AddCapacitor(die, Ground, c)
		n.AddResistor(die, Ground, 1e6)
		n.AddTransientLoad(die, Ground, func(tm float64) float64 {
			if tm > 0 {
				return 10
			}
			return 0
		})
		res, err := n.Transient(TransientOptions{DT: 10e-12, Steps: 3000, InitDC: true}, []int{die})
		if err != nil {
			t.Fatal(err)
		}
		return 1.0 - res.MinV(0)
	}
	small, big := run(20e-9), run(200e-9)
	if big >= small {
		t.Errorf("10x decap should shrink droop: %g -> %g", small, big)
	}
}

func TestTransientStaticNetworkIsFlat(t *testing.T) {
	// No dynamic elements: every step reproduces the DC solution.
	n := New()
	a := n.Node()
	n.AddRailTie(a, 1, 1.0)
	n.AddResistor(a, Ground, 1)
	n.AddCapacitor(a, Ground, 1e-9)
	res, err := n.Transient(TransientOptions{DT: 1e-9, Steps: 50, InitDC: true}, []int{a})
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Times {
		if !units.ApproxEqual(res.V[0][k], 0.5, 1e-9, 1e-9) {
			t.Fatalf("step %d: %g, want 0.5", k, res.V[0][k])
		}
	}
}

func TestTransientValidation(t *testing.T) {
	n := New()
	a := n.Node()
	n.AddRailTie(a, 1, 1)
	if _, err := n.Transient(TransientOptions{DT: 0, Steps: 10}, nil); err == nil {
		t.Error("zero DT not caught")
	}
	if _, err := n.Transient(TransientOptions{DT: 1e-9, Steps: 0}, nil); err == nil {
		t.Error("zero steps not caught")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad probe should panic")
		}
	}()
	_, _ = n.Transient(TransientOptions{DT: 1e-9, Steps: 1}, []int{99})
}

func TestTransientElementValidation(t *testing.T) {
	n := New()
	a := n.Node()
	cases := []func(){
		func() { n.AddCapacitor(a, a, 1e-9) },
		func() { n.AddCapacitor(a, Ground, 0) },
		func() { n.AddInductor(a, a, 1e-9) },
		func() { n.AddInductor(a, Ground, -1) },
		func() { n.AddTransientLoad(a, Ground, nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTransientSolverAgreement(t *testing.T) {
	build := func() *Netlist {
		n := New()
		board := n.Node()
		die := n.Node()
		n.AddRailTie(board, 1e-3, 1.0)
		n.AddInductor(board, die, 20e-12)
		n.AddCapacitor(die, Ground, 50e-9)
		n.AddResistor(die, Ground, 1e5)
		n.AddTransientLoad(die, Ground, func(tm float64) float64 {
			if tm > 0 {
				return 5
			}
			return 0
		})
		return n
	}
	opts := TransientOptions{DT: 20e-12, Steps: 500, InitDC: true}
	optsI := opts
	optsI.Solve = SolveOptions{Solver: PCGIC0, Tol: 1e-12}
	rd, err := build().Transient(opts, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	ri, err := build().Transient(optsI, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	for k := range rd.Times {
		if !units.ApproxEqual(rd.V[0][k], ri.V[0][k], 1e-6, 1e-5) {
			t.Fatalf("solvers diverge at step %d: %g vs %g", k, rd.V[0][k], ri.V[0][k])
		}
	}
}

func TestDCSolveWithDynamicElements(t *testing.T) {
	// DC treats caps as open and inductors as shorts.
	n := New()
	a := n.Node()
	b := n.Node()
	n.AddRailTie(a, 1, 1.0)
	n.AddInductor(a, b, 1e-9)
	n.AddResistor(b, Ground, 1)
	n.AddCapacitor(b, Ground, 1e-9)
	s, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(s.V(b), 0.5, 1e-4, 1e-4) {
		t.Errorf("V(b) = %g, want ~0.5 (inductor ~ short)", s.V(b))
	}
}
