package circuit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"voltstack/internal/units"
)

func solveOrFatal(t *testing.T, n *Netlist, opts SolveOptions) *Solution {
	t.Helper()
	s, err := n.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestVoltageDivider(t *testing.T) {
	n := New()
	mid := n.Node()
	n.AddRailTie(mid, 1, 1)       // 1V rail through 1 ohm
	n.AddResistor(mid, Ground, 1) // 1 ohm to ground
	s := solveOrFatal(t, n, SolveOptions{})
	if !units.ApproxEqual(s.V(mid), 0.5, 1e-12, 1e-12) {
		t.Errorf("V(mid) = %g, want 0.5", s.V(mid))
	}
}

func TestIRDropUnderLoad(t *testing.T) {
	n := New()
	vdd := n.Node()
	tie := n.AddRailTie(vdd, 0.01, 1.0)
	n.AddLoad(vdd, Ground, 5) // 5A load
	s := solveOrFatal(t, n, SolveOptions{})
	if want := 1.0 - 5*0.01; !units.ApproxEqual(s.V(vdd), want, 1e-12, 1e-12) {
		t.Errorf("V(vdd) = %g, want %g", s.V(vdd), want)
	}
	if got := s.TieCurrent(tie); !units.ApproxEqual(got, 5, 1e-12, 1e-12) {
		t.Errorf("tie current = %g, want 5", got)
	}
}

func TestResistorCurrentSign(t *testing.T) {
	n := New()
	a := n.Node()
	b := n.Node()
	n.AddRailTie(a, 0.001, 2)
	r := n.AddResistor(a, b, 1)
	n.AddResistor(b, Ground, 1)
	s := solveOrFatal(t, n, SolveOptions{})
	// Current flows from a (high) to b (low): positive.
	if got := s.ResistorCurrent(r); got <= 0 {
		t.Errorf("current a->b = %g, want positive", got)
	}
}

func TestLoadBetweenInternalNodes(t *testing.T) {
	// Two nodes, load from n1 to n2; both tied to rails.
	n := New()
	n1, n2 := n.Node(), n.Node()
	n.AddRailTie(n1, 0.1, 1.0)
	n.AddRailTie(n2, 0.1, 0.0)
	ld := n.AddLoad(n1, n2, 2)
	s := solveOrFatal(t, n, SolveOptions{})
	// 2A through each 0.1 ohm tie: V(n1)=0.8, V(n2)=0.2.
	if !units.ApproxEqual(s.V(n1), 0.8, 1e-12, 1e-12) || !units.ApproxEqual(s.V(n2), 0.2, 1e-12, 1e-12) {
		t.Errorf("V = %g, %g; want 0.8, 0.2", s.V(n1), s.V(n2))
	}
	if got := s.LoadPower(ld); !units.ApproxEqual(got, 2*0.6, 1e-12, 1e-12) {
		t.Errorf("load power = %g, want 1.2", got)
	}
}

func TestConverterRegulatesMidpoint(t *testing.T) {
	// Ideal stack: top at 2V (stiff), bottom grounded. No load on mid:
	// converter output must sit exactly at 1V with zero current.
	n := New()
	top, mid := n.Node(), n.Node()
	n.AddRailTie(top, 1e-6, 2.0)
	cv := n.AddConverter2to1(top, Ground, mid, 0.6, 0)
	s := solveOrFatal(t, n, SolveOptions{})
	if !units.ApproxEqual(s.V(mid), 1.0, 1e-6, 1e-9) {
		t.Errorf("V(mid) = %g, want 1.0", s.V(mid))
	}
	if j := s.ConverterOutputCurrent(cv); math.Abs(j) > 1e-9 {
		t.Errorf("converter idle current = %g, want 0", j)
	}
}

func TestConverterSourcesUnderLoad(t *testing.T) {
	// Load pulls mid down; converter must source J = Iload and the output
	// droop must be J*RSERIES below the ideal midpoint.
	const rs = 0.6
	const iload = 0.05
	n := New()
	top, mid := n.Node(), n.Node()
	n.AddRailTie(top, 1e-9, 2.0)
	cv := n.AddConverter2to1(top, Ground, mid, rs, 0)
	n.AddLoad(mid, Ground, iload)
	s := solveOrFatal(t, n, SolveOptions{})
	j := s.ConverterOutputCurrent(cv)
	if !units.ApproxEqual(j, iload, 1e-9, 1e-9) {
		t.Errorf("J = %g, want %g", j, iload)
	}
	if want := 1.0 - iload*rs; !units.ApproxEqual(s.V(mid), want, 1e-9, 1e-9) {
		t.Errorf("V(mid) = %g, want %g", s.V(mid), want)
	}
}

func TestConverterSinksWhenMidPushedHigh(t *testing.T) {
	// Inject current INTO mid: converter must sink (negative J) and mid
	// rises above the midpoint.
	n := New()
	top, mid := n.Node(), n.Node()
	n.AddRailTie(top, 1e-9, 2.0)
	cv := n.AddConverter2to1(top, Ground, mid, 0.6, 0)
	n.AddLoad(Ground, mid, 0.03) // push 30mA into mid
	s := solveOrFatal(t, n, SolveOptions{})
	if j := s.ConverterOutputCurrent(cv); !units.ApproxEqual(j, -0.03, 1e-9, 1e-9) {
		t.Errorf("J = %g, want -0.03", j)
	}
	if s.V(mid) <= 1.0 {
		t.Errorf("V(mid) = %g, should rise above 1.0", s.V(mid))
	}
}

func TestVoltageStackChargeRecycling(t *testing.T) {
	// Two stacked loads with a converter on the intermediate node.
	// I1 = 1A (top load), I2 = 2A (bottom load). The converter supplies
	// the difference J = I2 - I1 = 1A, and the off-chip current is
	// I1 + J/2 = 1.5A — half the 3A a regular PDN would draw.
	const rPad = 1e-3
	const rs = 0.1
	n := New()
	top, mid := n.Node(), n.Node()
	tie := n.AddRailTie(top, rPad, 2.0)
	cv := n.AddConverter2to1(top, Ground, mid, rs, 0)
	n.AddLoad(top, mid, 1)
	n.AddLoad(mid, Ground, 2)
	s := solveOrFatal(t, n, SolveOptions{})

	if j := s.ConverterOutputCurrent(cv); !units.ApproxEqual(j, 1, 1e-9, 1e-9) {
		t.Errorf("J = %g, want 1", j)
	}
	if iin := s.TieCurrent(tie); !units.ApproxEqual(iin, 1.5, 1e-9, 1e-9) {
		t.Errorf("input current = %g, want 1.5", iin)
	}
	vtop := 2.0 - 1.5*rPad
	wantMid := vtop/2 - 1.0*rs
	if !units.ApproxEqual(s.V(mid), wantMid, 1e-9, 1e-9) {
		t.Errorf("V(mid) = %g, want %g", s.V(mid), wantMid)
	}
}

func TestBalancedStackNeedsNoConverterCurrent(t *testing.T) {
	n := New()
	top, mid := n.Node(), n.Node()
	n.AddRailTie(top, 1e-3, 2.0)
	cv := n.AddConverter2to1(top, Ground, mid, 0.6, 0)
	n.AddLoad(top, mid, 1.5)
	n.AddLoad(mid, Ground, 1.5)
	s := solveOrFatal(t, n, SolveOptions{})
	if j := s.ConverterOutputCurrent(cv); math.Abs(j) > 1e-9 {
		t.Errorf("balanced stack: J = %g, want 0", j)
	}
}

func TestConverterParasiticLoss(t *testing.T) {
	const gPar = 1e-3
	const rPad = 1e-3
	n := New()
	top, mid := n.Node(), n.Node()
	tie := n.AddRailTie(top, rPad, 2.0)
	cv := n.AddConverter2to1(top, Ground, mid, 0.6, gPar)
	s := solveOrFatal(t, n, SolveOptions{})
	// Exact: Vtop = 2/(1 + gPar*rPad); I = gPar*Vtop; loss = gPar*Vtop².
	vtop := 2.0 / (1 + gPar*rPad)
	if got := s.ConverterParasiticLoss(cv); !units.ApproxEqual(got, gPar*vtop*vtop, 0, 1e-9) {
		t.Errorf("parasitic loss = %g, want %g", got, gPar*vtop*vtop)
	}
	// The parasitic current is drawn from the rail.
	if got := s.TieCurrent(tie); !units.ApproxEqual(got, gPar*vtop, 0, 1e-9) {
		t.Errorf("tie current = %g, want %g", got, gPar*vtop)
	}
}

func TestEnergyBalanceSimple(t *testing.T) {
	n := New()
	top, mid := n.Node(), n.Node()
	n.AddRailTie(top, 1e-2, 2.0)
	n.AddConverter2to1(top, Ground, mid, 0.6, 1e-4)
	n.AddLoad(top, mid, 0.8)
	n.AddLoad(mid, Ground, 1.9)
	s := solveOrFatal(t, n, SolveOptions{})
	if e := s.EnergyBalanceError(); e > 1e-9 {
		t.Errorf("energy balance error = %g", e)
	}
}

// randomStackNetwork builds a random but well-posed multi-node network.
func randomStackNetwork(rng *rand.Rand) *Netlist {
	n := New()
	layers := 2 + rng.Intn(4)
	cols := 2 + rng.Intn(3)
	// rails[l][c]: node grid; rail l=0 is ground.
	nodes := make([][]int, layers+1)
	for l := range nodes {
		nodes[l] = make([]int, cols)
		for c := range nodes[l] {
			if l == 0 {
				nodes[l][c] = Ground
			} else {
				nodes[l][c] = n.Node()
			}
		}
	}
	vtop := float64(layers)
	for c := 0; c < cols; c++ {
		n.AddRailTie(nodes[layers][c], 1e-3+rng.Float64()*1e-2, vtop)
	}
	for l := 1; l <= layers; l++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				n.AddResistor(nodes[l][c], nodes[l][c+1], 0.01+rng.Float64()*0.1)
			}
			n.AddLoad(nodes[l][c], nodes[l-1][c], rng.Float64())
			if l+1 <= layers {
				n.AddConverter2to1(nodes[l+1][c], nodes[l-1][c], nodes[l][c], 0.3+rng.Float64(), rng.Float64()*1e-3)
			}
		}
	}
	return n
}

func TestEnergyBalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomStackNetwork(rng)
		s, err := n.Solve(SolveOptions{Solver: Direct})
		if err != nil {
			return false
		}
		return s.EnergyBalanceError() < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := randomStackNetwork(rng)
	sd, err := n.Solve(SolveOptions{Solver: Direct})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []SolverKind{PCGIC0, PCGJacobi, DirectSparseND} {
		si, err := n.Solve(SolveOptions{Solver: kind, Tol: 1e-12})
		if err != nil {
			t.Fatalf("solver %d: %v", kind, err)
		}
		for node := 0; node < n.NumNodes(); node++ {
			if !units.ApproxEqual(sd.V(node), si.V(node), 1e-7, 1e-6) {
				t.Fatalf("solver %d disagrees at node %d: %g vs %g", kind, node, sd.V(node), si.V(node))
			}
		}
	}
}

func TestFloatingNodeError(t *testing.T) {
	n := New()
	a := n.Node()
	_ = n.Node() // floating node, never connected
	n.AddRailTie(a, 1, 1)
	if _, err := n.Solve(SolveOptions{Solver: Direct}); err == nil {
		t.Error("expected floating-node error")
	}
}

func TestEmptyNetlist(t *testing.T) {
	n := New()
	s, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalInputPower() != 0 || s.TotalLoadPower() != 0 {
		t.Error("empty netlist should have zero powers")
	}
}

func TestInvalidElementsPanic(t *testing.T) {
	cases := []struct {
		name string
		f    func(n *Netlist, a int)
	}{
		{"zero resistor", func(n *Netlist, a int) { n.AddResistor(a, Ground, 0) }},
		{"negative resistor", func(n *Netlist, a int) { n.AddResistor(a, Ground, -1) }},
		{"self loop", func(n *Netlist, a int) { n.AddResistor(a, a, 1) }},
		{"ground tie", func(n *Netlist, a int) { n.AddRailTie(Ground, 1, 1) }},
		{"zero tie resistance", func(n *Netlist, a int) { n.AddRailTie(a, 0, 1) }},
		{"bad node", func(n *Netlist, a int) { n.AddResistor(a, 99, 1) }},
		{"zero converter rs", func(n *Netlist, a int) { n.AddConverter2to1(a, Ground, a, 0, 0) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := New()
			a := n.Node()
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.f(n, a)
		})
	}
}

func TestGridIRDropSymmetry(t *testing.T) {
	// A symmetric 3x3 grid with a center load: corner voltages must match.
	n := New()
	grid := make([]int, 9)
	for i := range grid {
		grid[i] = n.Node()
	}
	at := func(x, y int) int { return grid[y*3+x] }
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if x+1 < 3 {
				n.AddResistor(at(x, y), at(x+1, y), 0.1)
			}
			if y+1 < 3 {
				n.AddResistor(at(x, y), at(x, y+1), 0.1)
			}
		}
	}
	for _, corner := range []int{at(0, 0), at(2, 0), at(0, 2), at(2, 2)} {
		n.AddRailTie(corner, 0.05, 1.0)
	}
	n.AddLoad(at(1, 1), Ground, 3)
	s := solveOrFatal(t, n, SolveOptions{})
	v00 := s.V(at(0, 0))
	for _, corner := range []int{at(2, 0), at(0, 2), at(2, 2)} {
		if !units.ApproxEqual(s.V(corner), v00, 1e-12, 1e-10) {
			t.Errorf("corner voltage asymmetry: %g vs %g", s.V(corner), v00)
		}
	}
	if s.V(at(1, 1)) >= v00 {
		t.Error("center (loaded) node should droop below corners")
	}
}
