package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"voltstack/internal/units"
)

// randomResistiveNetwork builds a random connected resistor network with
// ties, without converters (linear reciprocal network).
func randomResistiveNetwork(rng *rand.Rand) (*Netlist, []int) {
	n := New()
	k := 4 + rng.Intn(8)
	nodes := n.Nodes(k)
	// Spanning chain keeps it connected.
	for i := 1; i < k; i++ {
		n.AddResistor(nodes[i-1], nodes[i], 0.1+rng.Float64())
	}
	// Extra random edges.
	for e := 0; e < k; e++ {
		a, b := rng.Intn(k), rng.Intn(k)
		if a != b {
			n.AddResistor(nodes[a], nodes[b], 0.1+rng.Float64())
		}
	}
	n.AddRailTie(nodes[0], 0.05+rng.Float64(), 0)
	return n, nodes
}

func TestSuperposition(t *testing.T) {
	// For a linear network, the response to two loads equals the sum of
	// the responses to each load alone.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		build := func(i1, i2 float64) []float64 {
			n, nodes := buildFixed(seed)
			if i1 != 0 {
				n.AddLoad(nodes[1], Ground, i1)
			}
			if i2 != 0 {
				n.AddLoad(nodes[len(nodes)-1], Ground, i2)
			}
			s, err := n.Solve(SolveOptions{Solver: Direct})
			if err != nil {
				return nil
			}
			out := make([]float64, len(nodes))
			for i, nd := range nodes {
				out[i] = s.V(nd)
			}
			return out
		}
		i1 := rng.Float64()
		i2 := rng.Float64()
		both := build(i1, i2)
		only1 := build(i1, 0)
		only2 := build(0, i2)
		zero := build(0, 0)
		if both == nil || only1 == nil || only2 == nil || zero == nil {
			return false
		}
		for i := range both {
			want := only1[i] + only2[i] - zero[i]
			if !units.ApproxEqual(both[i], want, 1e-9, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// buildFixed rebuilds the identical random network for a seed (needed
// because superposition requires the same topology across solves).
func buildFixed(seed int64) (*Netlist, []int) {
	rng := rand.New(rand.NewSource(seed))
	return randomResistiveNetwork(rng)
}

func TestReciprocity(t *testing.T) {
	// For a reciprocal (resistor-only) network: the voltage at node b due
	// to a unit current injected at node a equals the voltage at a due to
	// the same current at b.
	f := func(seed int64) bool {
		probe := func(inject, measure int) float64 {
			n, nodes := buildFixed(seed)
			n.AddLoad(Ground, nodes[inject], 1) // inject 1 A
			s, err := n.Solve(SolveOptions{Solver: Direct})
			if err != nil {
				return 0
			}
			return s.V(nodes[measure])
		}
		_, nodes := buildFixed(seed)
		a, b := 1, len(nodes)-1
		vab := probe(a, b)
		vba := probe(b, a)
		return units.ApproxEqual(vab, vba, 1e-9, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCurrentScalingLinearity(t *testing.T) {
	// Doubling every load current doubles every droop from the rail.
	f := func(seed int64) bool {
		build := func(scale float64) (*Solution, []int) {
			rng := rand.New(rand.NewSource(seed))
			n, nodes := randomResistiveNetwork(rng)
			for i := 1; i < len(nodes); i++ {
				n.AddLoad(nodes[i], Ground, scale*rng.Float64())
			}
			s, err := n.Solve(SolveOptions{Solver: Direct})
			if err != nil {
				return nil, nil
			}
			return s, nodes
		}
		s1, nodes := build(1)
		s2, _ := build(2)
		if s1 == nil || s2 == nil {
			return false
		}
		for _, nd := range nodes {
			if !units.ApproxEqual(2*s1.V(nd), s2.V(nd), 1e-9, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConverterNetworkStillPassive(t *testing.T) {
	// The rank-1 converter stamp must never generate energy: input power
	// covers all loads and losses for random stacked networks.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomStackNetwork(rng)
		s, err := n.Solve(SolveOptions{Solver: Direct})
		if err != nil {
			return false
		}
		return s.TotalInputPower() >= s.TotalLoadPower()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
