package circuit

import (
	"errors"
	"fmt"
	"math"

	"voltstack/internal/sparse"
)

// CapID identifies a capacitor.
type CapID int

// IndID identifies an inductor.
type IndID int

// TLoadID identifies a time-varying load.
type TLoadID int

type capacitor struct {
	a, b int
	c    float64
}

type inductor struct {
	a, b int
	l    float64
}

// tload is a load current source whose magnitude follows fn(t).
type tload struct {
	from, to int
	fn       func(t float64) float64
}

// AddCapacitor connects a capacitor of the given value between a and b.
// Capacitors only participate in Transient analysis; the DC Solve ignores
// them (open circuit), matching their steady-state behavior.
func (n *Netlist) AddCapacitor(a, b int, farads float64) CapID {
	n.checkNode(a)
	n.checkNode(b)
	if farads <= 0 {
		panic(fmt.Sprintf("circuit: capacitance must be positive, got %g", farads))
	}
	if a == b {
		panic("circuit: capacitor endpoints must differ")
	}
	n.caps = append(n.caps, capacitor{a, b, farads})
	return CapID(len(n.caps) - 1)
}

// AddInductor connects an inductor between a and b. In the DC Solve it
// behaves as a short with a small resistance (its series companion at
// dt→∞ is ill-defined, so DC treats it as RIndDC); in Transient analysis
// it integrates v = L·di/dt with a backward-Euler companion model.
func (n *Netlist) AddInductor(a, b int, henries float64) IndID {
	n.checkNode(a)
	n.checkNode(b)
	if henries <= 0 {
		panic(fmt.Sprintf("circuit: inductance must be positive, got %g", henries))
	}
	if a == b {
		panic("circuit: inductor endpoints must differ")
	}
	n.inductors = append(n.inductors, inductor{a, b, henries})
	return IndID(len(n.inductors) - 1)
}

// RIndDC is the resistance inductors present to the DC operating-point
// solve (they are ideally shorts at DC).
const RIndDC = 1e-6

// AddTransientLoad adds a load whose current is fn(t) amperes, drawn from
// `from` and returned into `to`. During the DC operating-point solve the
// load takes its fn(0) value.
func (n *Netlist) AddTransientLoad(from, to int, fn func(t float64) float64) TLoadID {
	n.checkNode(from)
	n.checkNode(to)
	if fn == nil {
		panic("circuit: nil transient load function")
	}
	n.tloads = append(n.tloads, tload{from, to, fn})
	return TLoadID(len(n.tloads) - 1)
}

// TransientOptions configures a transient run.
type TransientOptions struct {
	DT    float64 // time step (s)
	Steps int     // number of steps after t=0
	// InitDC starts from the DC operating point at t=0 loads (default).
	// When false the run starts from all-zero node voltages.
	InitDC bool
	Solve  SolveOptions // solver for the DC init and the step matrix
}

// TransientResult holds probed waveforms.
type TransientResult struct {
	Times  []float64
	Probes []int       // the probed node ids
	V      [][]float64 // V[p][k]: probe p at time step k (includes t=0)
}

// MinV returns the minimum of probe p over the run.
func (r *TransientResult) MinV(p int) float64 {
	m := math.Inf(1)
	for _, v := range r.V[p] {
		if v < m {
			m = v
		}
	}
	return m
}

// MaxV returns the maximum of probe p over the run.
func (r *TransientResult) MaxV(p int) float64 {
	m := math.Inf(-1)
	for _, v := range r.V[p] {
		if v > m {
			m = v
		}
	}
	return m
}

// ErrTransient wraps transient-analysis failures.
var ErrTransient = errors.New("circuit: transient analysis failed")

// Transient integrates the network with backward Euler at fixed step DT,
// recording the given probe nodes. Static loads keep their DC values;
// transient loads follow their functions; capacitors and inductors use
// companion models. The step matrix is factored once (direct solver) or
// warm-started (iterative), so long runs are cheap.
func (n *Netlist) Transient(opts TransientOptions, probes []int) (*TransientResult, error) {
	if opts.DT <= 0 || opts.Steps <= 0 {
		return nil, fmt.Errorf("%w: need positive DT and Steps", ErrTransient)
	}
	for _, p := range probes {
		n.checkNode(p)
	}
	if err := n.CheckConnectivity(); err != nil {
		return nil, err
	}
	nn := n.numNodes
	dt := opts.DT

	// Initial condition.
	v := make([]float64, nn)
	if opts.InitDC {
		dc, err := n.Solve(opts.Solve)
		if err != nil {
			return nil, fmt.Errorf("%w: DC init: %v", ErrTransient, err)
		}
		copy(v, dc.v)
	}

	// Assemble the constant step matrix: conductances + C/dt + dt/L.
	b := sparse.NewBuilder(nn)
	rhsBase := make([]float64, nn)
	for _, r := range n.resistors {
		stampConductance(b, r.a, r.b, r.g)
	}
	for _, t := range n.ties {
		b.Add(t.node, t.node, t.g)
		rhsBase[t.node] += t.g * t.vRail
	}
	for _, l := range n.loads {
		if l.from != Ground {
			rhsBase[l.from] -= l.i
		}
		if l.to != Ground {
			rhsBase[l.to] += l.i
		}
	}
	for _, c := range n.converters {
		stampConverter(b, c)
	}
	for _, c := range n.caps {
		stampConductance(b, c.a, c.b, c.c/dt)
	}
	for _, l := range n.inductors {
		stampConductance(b, l.a, l.b, dt/l.l)
	}
	a := b.ToCSR()

	kind := opts.Solve.Solver
	if kind == Auto {
		if nn <= directThreshold {
			kind = Direct
		} else {
			kind = PCGIC0
		}
	}
	var chol interface{ SolveTo(dst, b []float64) }
	var prec sparse.Preconditioner
	var err error
	switch kind {
	case Direct:
		chol, err = sparse.FactorCholesky(a)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTransient, err)
		}
	case DirectSparseND:
		chol, err = sparse.FactorSparse(a, sparse.OrderND)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTransient, err)
		}
	case PCGIC0:
		if ic, e := sparse.NewIC0(a); e == nil {
			prec = ic
		} else {
			prec = sparse.NewJacobi(a)
		}
	case PCGJacobi:
		prec = sparse.NewJacobi(a)
	default:
		return nil, fmt.Errorf("%w: unknown solver %d", ErrTransient, kind)
	}
	tol := opts.Solve.Tol
	if tol == 0 {
		tol = 1e-10
	}
	maxIter := opts.Solve.MaxIter
	if maxIter == 0 {
		maxIter = 20 * nn
		if maxIter < 1000 {
			maxIter = 1000
		}
	}

	// Inductor current state at the operating point: solve from branch
	// voltage is zero at a true DC point (ideal shorts), so the DC
	// current equals whatever keeps KCL; initialize from the DC solve by
	// treating the inductor as RIndDC in Solve()... The DC solve above
	// already included them as resistors of RIndDC, so recover i = v/R.
	iL := make([]float64, len(n.inductors))
	if opts.InitDC {
		for k, l := range n.inductors {
			va, vb := nodeV(v, l.a), nodeV(v, l.b)
			iL[k] = (va - vb) / RIndDC
		}
	}

	res := &TransientResult{Probes: append([]int(nil), probes...)}
	record := func(t float64) {
		res.Times = append(res.Times, t)
		if res.V == nil {
			res.V = make([][]float64, len(probes))
		}
		for i, p := range probes {
			res.V[i] = append(res.V[i], nodeV(v, p))
		}
	}
	record(0)

	rhs := make([]float64, nn)
	for step := 1; step <= opts.Steps; step++ {
		t := float64(step) * dt
		copy(rhs, rhsBase)
		for _, tl := range n.tloads {
			i := tl.fn(t)
			if tl.from != Ground {
				rhs[tl.from] -= i
			}
			if tl.to != Ground {
				rhs[tl.to] += i
			}
		}
		for _, c := range n.caps {
			q := c.c / dt * (nodeV(v, c.a) - nodeV(v, c.b))
			if c.a != Ground {
				rhs[c.a] += q
			}
			if c.b != Ground {
				rhs[c.b] -= q
			}
		}
		for k, l := range n.inductors {
			// Companion: i_new = iL + dt/L (Va-Vb); the history current
			// iL enters as a source from a to b.
			if l.a != Ground {
				rhs[l.a] -= iL[k]
			}
			if l.b != Ground {
				rhs[l.b] += iL[k]
			}
		}

		if chol != nil {
			chol.SolveTo(v, rhs)
		} else {
			x, _, err := sparse.PCG(a, rhs, v, prec, tol, maxIter)
			if err != nil {
				return nil, fmt.Errorf("%w: step %d: %v", ErrTransient, step, err)
			}
			copy(v, x)
		}
		for k, l := range n.inductors {
			iL[k] += dt / l.l * (nodeV(v, l.a) - nodeV(v, l.b))
		}
		record(t)
	}
	return res, nil
}

func nodeV(v []float64, node int) float64 {
	if node == Ground {
		return 0
	}
	return v[node]
}
