package em

import (
	"math"
	"testing"

	"voltstack/internal/units"
)

func TestMonteCarloMatchesAnalyticSingle(t *testing.T) {
	g := NewGroup(0.4)
	g.AddT50(1000)
	analytic, err := g.MedianLifetime()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := g.SimulateMedianLifetime(20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(mc, analytic, 0.03) {
		t.Errorf("MC %g vs analytic %g", mc, analytic)
	}
}

func TestMonteCarloMatchesAnalyticGroup(t *testing.T) {
	// A realistic pad-array-like group: a spread of medians.
	g := NewGroup(0.4)
	for i := 0; i < 200; i++ {
		g.AddT50(500 + 10*float64(i))
	}
	analytic, err := g.MedianLifetime()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := g.SimulateMedianLifetime(20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(mc, analytic, 0.05) {
		t.Errorf("MC %g vs analytic %g disagree beyond 5%%", mc, analytic)
	}
}

func TestMonteCarloSkipsUnstressed(t *testing.T) {
	g := NewGroup(0.4)
	g.AddT50(800)
	g.AddT50(math.Inf(1))
	mc, err := g.SimulateMedianLifetime(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(mc, 800, 0.05) {
		t.Errorf("MC %g, want ~800", mc)
	}
}

func TestMonteCarloEmptyGroup(t *testing.T) {
	g := NewGroup(0.4)
	if _, err := g.SimulateMedianLifetime(100, 1); err == nil {
		t.Error("empty group should error")
	}
	g.AddT50(math.Inf(1))
	if _, err := g.SimulateMedianLifetime(100, 1); err == nil {
		t.Error("unstressed-only group should error")
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	g := NewGroup(0.3)
	for _, v := range []float64{10, 20, 30} {
		g.AddT50(v)
	}
	a, _ := g.SimulateMedianLifetime(1000, 42)
	b, _ := g.SimulateMedianLifetime(1000, 42)
	if a != b {
		t.Error("same seed must reproduce")
	}
	c, _ := g.SimulateMedianLifetime(1000, 43)
	if a == c {
		t.Error("different seed should differ")
	}
}

func TestMonteCarloWeakestLinkOrdering(t *testing.T) {
	small := NewGroup(0.4)
	large := NewGroup(0.4)
	for i := 0; i < 4; i++ {
		small.AddT50(1000)
	}
	for i := 0; i < 256; i++ {
		large.AddT50(1000)
	}
	ms, _ := small.SimulateMedianLifetime(4000, 5)
	ml, _ := large.SimulateMedianLifetime(4000, 5)
	if ml >= ms {
		t.Errorf("larger group should fail sooner: %g vs %g", ml, ms)
	}
}

// TestMonteCarloWorkerEquivalence is the determinism contract of the
// parallel Monte Carlo: because every trial draws from its own
// (seed, trial)-derived RNG stream, the estimate is bit-identical for
// any worker count.
func TestMonteCarloWorkerEquivalence(t *testing.T) {
	g := NewGroup(0.4)
	for i := 0; i < 50; i++ {
		g.AddT50(300 + 25*float64(i))
	}
	for _, trials := range []int{1, 2, 999, 1000} {
		ref, err := g.SimulateMedianLifetimeWorkers(trials, 11, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			got, err := g.SimulateMedianLifetimeWorkers(trials, 11, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Errorf("trials=%d workers=%d: %g != serial %g", trials, workers, got, ref)
			}
		}
	}
}

// TestMonteCarloDefaultMatchesExplicitWorkers pins SimulateMedianLifetime
// to the workers-parameterized implementation.
func TestMonteCarloDefaultMatchesExplicitWorkers(t *testing.T) {
	g := NewGroup(0.35)
	g.AddT50(100)
	g.AddT50(250)
	a, err := g.SimulateMedianLifetime(501, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.SimulateMedianLifetimeWorkers(501, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("default-worker result %g != serial %g", a, b)
	}
}

func TestTrialStreamsDecorrelated(t *testing.T) {
	// Adjacent trials must not replay each other's stream shifted by one
	// draw (the failure mode of seeding SplitMix64 with seed+trial).
	s0 := newTrialSource(1, 0)
	s1 := newTrialSource(1, 1)
	a := []uint64{s0.Uint64(), s0.Uint64(), s0.Uint64()}
	b := []uint64{s1.Uint64(), s1.Uint64(), s1.Uint64()}
	if a[1] == b[0] && a[2] == b[1] {
		t.Error("trial 1's stream is trial 0's stream shifted by one")
	}
	if a[0] == b[0] {
		t.Error("distinct trials produced identical streams")
	}
}

func TestMonteCarloMinimumTrials(t *testing.T) {
	g := NewGroup(0.4)
	g.AddT50(100)
	if _, err := g.SimulateMedianLifetime(0, 1); err != nil {
		t.Errorf("zero trials should clamp to one: %v", err)
	}
}
