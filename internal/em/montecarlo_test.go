package em

import (
	"math"
	"testing"

	"voltstack/internal/units"
)

func TestMonteCarloMatchesAnalyticSingle(t *testing.T) {
	g := NewGroup(0.4)
	g.AddT50(1000)
	analytic, err := g.MedianLifetime()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := g.SimulateMedianLifetime(20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(mc, analytic, 0.03) {
		t.Errorf("MC %g vs analytic %g", mc, analytic)
	}
}

func TestMonteCarloMatchesAnalyticGroup(t *testing.T) {
	// A realistic pad-array-like group: a spread of medians.
	g := NewGroup(0.4)
	for i := 0; i < 200; i++ {
		g.AddT50(500 + 10*float64(i))
	}
	analytic, err := g.MedianLifetime()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := g.SimulateMedianLifetime(20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(mc, analytic, 0.05) {
		t.Errorf("MC %g vs analytic %g disagree beyond 5%%", mc, analytic)
	}
}

func TestMonteCarloSkipsUnstressed(t *testing.T) {
	g := NewGroup(0.4)
	g.AddT50(800)
	g.AddT50(math.Inf(1))
	mc, err := g.SimulateMedianLifetime(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(mc, 800, 0.05) {
		t.Errorf("MC %g, want ~800", mc)
	}
}

func TestMonteCarloEmptyGroup(t *testing.T) {
	g := NewGroup(0.4)
	if _, err := g.SimulateMedianLifetime(100, 1); err == nil {
		t.Error("empty group should error")
	}
	g.AddT50(math.Inf(1))
	if _, err := g.SimulateMedianLifetime(100, 1); err == nil {
		t.Error("unstressed-only group should error")
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	g := NewGroup(0.3)
	for _, v := range []float64{10, 20, 30} {
		g.AddT50(v)
	}
	a, _ := g.SimulateMedianLifetime(1000, 42)
	b, _ := g.SimulateMedianLifetime(1000, 42)
	if a != b {
		t.Error("same seed must reproduce")
	}
	c, _ := g.SimulateMedianLifetime(1000, 43)
	if a == c {
		t.Error("different seed should differ")
	}
}

func TestMonteCarloWeakestLinkOrdering(t *testing.T) {
	small := NewGroup(0.4)
	large := NewGroup(0.4)
	for i := 0; i < 4; i++ {
		small.AddT50(1000)
	}
	for i := 0; i < 256; i++ {
		large.AddT50(1000)
	}
	ms, _ := small.SimulateMedianLifetime(4000, 5)
	ml, _ := large.SimulateMedianLifetime(4000, 5)
	if ml >= ms {
		t.Errorf("larger group should fail sooner: %g vs %g", ml, ms)
	}
}

func TestMonteCarloMinimumTrials(t *testing.T) {
	g := NewGroup(0.4)
	g.AddT50(100)
	if _, err := g.SimulateMedianLifetime(0, 1); err != nil {
		t.Errorf("zero trials should clamp to one: %v", err)
	}
}
