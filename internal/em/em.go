// Package em models electromigration-induced wearout of PDN conductors
// (C4 pads and TSVs) following the paper's Sec. 3.3:
//
//   - each conductor's mean time to failure follows Black's equation,
//     MTTF = A · J^(-n) · exp(Ea / kT);
//   - individual lifetimes are lognormally distributed around that median;
//   - a group of conductors (a pad or TSV array) fails when its first
//     member fails: P(t) = 1 − Π(1 − Fi(t)), and the reported
//     "expected EM-damage-free lifetime" is the t with P(t) = 0.5.
//
// Absolute lifetimes depend on foundry constants that are not public; as in
// the paper, results are meaningful as ratios (all figures are normalized),
// so the prefactor A only needs to be consistent across compared scenarios.
package em

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"voltstack/internal/units"
)

// BlackParams holds Black's-equation constants for one conductor class.
type BlackParams struct {
	A        float64 // technology prefactor (sets the absolute time scale)
	N        float64 // current-density exponent
	Ea       float64 // activation energy (eV)
	SigmaLog float64 // lognormal shape parameter σ of the failure distribution
	IRef     float64 // reference current (A) at which MTTF = A·exp(Ea/kT)
}

// DefaultC4 returns constants for solder C4 bumps. The current exponent is
// calibrated (n = 0.78) so that the normalized lifetime ratios of the
// paper's Fig. 5b are reproduced: an 8x off-chip current ratio between the
// regular and voltage-stacked PDN maps to the paper's ~5x lifetime gap.
// Published Black exponents for solder span roughly 0.5-2 depending on the
// failure mechanism; the value here is a fit to the paper's own results.
func DefaultC4() BlackParams {
	return BlackParams{A: 1, N: 0.78, Ea: 0.8, SigmaLog: 0.4, IRef: 50 * units.Milliampere}
}

// DefaultTSV returns constants for copper TSVs, with the current exponent
// calibrated (n = 0.9) to reproduce the normalized Fig. 5a ratios: the
// regular PDN's ~7x bottom-boundary current growth from 2 to 8 layers maps
// to the paper's ~84% lifetime degradation.
func DefaultTSV() BlackParams {
	return BlackParams{A: 1, N: 0.9, Ea: 0.9, SigmaLog: 0.4, IRef: 10 * units.Milliampere}
}

// Validate checks parameter sanity.
func (p BlackParams) Validate() error {
	switch {
	case p.A <= 0:
		return fmt.Errorf("em: prefactor A must be positive, got %g", p.A)
	case p.N <= 0:
		return fmt.Errorf("em: exponent N must be positive, got %g", p.N)
	case p.SigmaLog <= 0:
		return fmt.Errorf("em: SigmaLog must be positive, got %g", p.SigmaLog)
	case p.IRef <= 0:
		return fmt.Errorf("em: IRef must be positive, got %g", p.IRef)
	}
	return nil
}

// MTTF returns the median lifetime of a single conductor carrying |current|
// amperes at temperature tempK. A zero current yields +Inf (no EM stress).
func (p BlackParams) MTTF(current, tempK float64) float64 {
	i := math.Abs(current)
	if i == 0 {
		return math.Inf(1)
	}
	return p.A * math.Pow(i/p.IRef, -p.N) * math.Exp(p.Ea/(units.BoltzmannEV*tempK))
}

// LognormalCDF returns the probability that a conductor with median
// lifetime t50 and shape sigma has failed by time t.
func LognormalCDF(t, t50, sigma float64) float64 {
	if t <= 0 {
		return 0
	}
	if math.IsInf(t50, 1) {
		return 0
	}
	z := (math.Log(t) - math.Log(t50)) / sigma
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Group models a population of conductors subject to EM wearout, e.g. the
// power-supply C4 pad array or a TSV array.
type Group struct {
	sigma float64
	t50s  []float64
}

// NewGroup returns an empty group with lognormal shape sigma.
func NewGroup(sigma float64) *Group {
	if sigma <= 0 {
		panic(fmt.Sprintf("em: sigma must be positive, got %g", sigma))
	}
	return &Group{sigma: sigma}
}

// AddT50 adds a conductor by its median lifetime. Infinite medians
// (unstressed conductors) are accepted and never contribute to failure.
func (g *Group) AddT50(t50 float64) {
	if t50 <= 0 {
		panic(fmt.Sprintf("em: t50 must be positive, got %g", t50))
	}
	g.t50s = append(g.t50s, t50)
}

// AddConductor adds a conductor by its current and temperature using the
// given Black parameters.
func (g *Group) AddConductor(p BlackParams, current, tempK float64) {
	g.AddT50(p.MTTF(current, tempK))
}

// Len returns the number of conductors in the group.
func (g *Group) Len() int { return len(g.t50s) }

// FailureProb returns P(t) = 1 − Π(1 − Fi(t)), computed in log space so
// large groups do not underflow.
func (g *Group) FailureProb(t float64) float64 {
	var logSurvival float64
	for _, t50 := range g.t50s {
		f := LognormalCDF(t, t50, g.sigma)
		if f >= 1 {
			return 1
		}
		logSurvival += math.Log1p(-f)
	}
	return -math.Expm1(logSurvival)
}

// ErrEmptyGroup is returned when a lifetime is requested for a group with
// no stressed conductors.
var ErrEmptyGroup = errors.New("em: group has no conductors under EM stress")

// MedianLifetime returns the expected EM-damage-free lifetime: the time at
// which the probability that at least one conductor has failed reaches 1/2.
func (g *Group) MedianLifetime() (float64, error) {
	return g.LifetimeAtProb(0.5)
}

// LifetimeAtProb returns the time at which the group failure probability
// reaches prob (0 < prob < 1), found by bisection in log time.
func (g *Group) LifetimeAtProb(prob float64) (float64, error) {
	if prob <= 0 || prob >= 1 {
		return 0, fmt.Errorf("em: probability must be in (0,1), got %g", prob)
	}
	minT50 := math.Inf(1)
	for _, t := range g.t50s {
		if t < minT50 {
			minT50 = t
		}
	}
	if math.IsInf(minT50, 1) {
		return 0, ErrEmptyGroup
	}

	// P is increasing in t. At t = minT50, the weakest conductor alone has
	// failed with probability 1/2, so P(minT50) ≥ 1/2 ≥ prob for the median
	// query; for general prob widen the bracket until it straddles.
	lo, hi := minT50, minT50
	for g.FailureProb(lo) > prob {
		lo /= 4
		if lo < minT50*1e-30 {
			return 0, fmt.Errorf("em: bisection bracket failure (lo)")
		}
	}
	for g.FailureProb(hi) < prob {
		hi *= 4
		if hi > minT50*1e30 {
			return 0, fmt.Errorf("em: bisection bracket failure (hi)")
		}
	}
	for i := 0; i < 200 && hi/lo > 1+1e-12; i++ {
		mid := math.Sqrt(lo * hi)
		if g.FailureProb(mid) < prob {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}

// WeakestT50 returns the smallest single-conductor median in the group.
func (g *Group) WeakestT50() float64 {
	m := math.Inf(1)
	for _, t := range g.t50s {
		if t < m {
			m = t
		}
	}
	return m
}

// Quantiles returns the q-quantiles of the per-conductor medians (for
// reporting current-distribution spreads). qs must be in (0,1).
func (g *Group) Quantiles(qs ...float64) []float64 {
	sorted := append([]float64(nil), g.t50s...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if len(sorted) == 0 {
			out[i] = math.NaN()
			continue
		}
		idx := q * float64(len(sorted)-1)
		lo := int(math.Floor(idx))
		hi := int(math.Ceil(idx))
		out[i] = units.Lerp(sorted[lo], sorted[hi], idx-float64(lo))
	}
	return out
}
