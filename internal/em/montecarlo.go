package em

import (
	"math"
	"math/rand"
	"sort"
)

// SimulateMedianLifetime estimates the group's expected EM-damage-free
// lifetime by Monte Carlo instead of the analytic CDF product: each trial
// draws one lognormal lifetime per conductor and records the earliest
// failure; the estimate is the median of those minima. It exists as an
// independent cross-check of MedianLifetime (the two converge as trials
// grow) and as the starting point for failure analyses the closed form
// cannot express (correlated wearout, replacement policies).
//
// Unstressed conductors (infinite medians) never fail and are skipped.
// Deterministic in (group, trials, seed).
func (g *Group) SimulateMedianLifetime(trials int, seed int64) (float64, error) {
	finite := make([]float64, 0, len(g.t50s))
	for _, t := range g.t50s {
		if !math.IsInf(t, 1) {
			finite = append(finite, t)
		}
	}
	if len(finite) == 0 {
		return 0, ErrEmptyGroup
	}
	if trials < 1 {
		trials = 1
	}
	rng := rand.New(rand.NewSource(seed))
	minima := make([]float64, trials)
	for tr := range minima {
		first := math.Inf(1)
		for _, t50 := range finite {
			// Lognormal draw: t = t50 · exp(σ·Z).
			t := t50 * math.Exp(g.sigma*rng.NormFloat64())
			if t < first {
				first = t
			}
		}
		minima[tr] = first
	}
	sort.Float64s(minima)
	mid := len(minima) / 2
	if len(minima)%2 == 1 {
		return minima[mid], nil
	}
	return (minima[mid-1] + minima[mid]) / 2, nil
}
