package em

import (
	"context"
	"log/slog"
	"math"
	"math/rand"
	"sort"
	"time"

	"voltstack/internal/parallel"
	"voltstack/internal/telemetry"
)

// Monte Carlo instrumentation: trial counts and throughput (trials/sec)
// size the sampling budget against wall-clock. No-ops unless telemetry is
// enabled.
var (
	mMCRuns       = telemetry.NewCounter("em_mc_runs_total")
	mMCTrials     = telemetry.NewCounter("em_mc_trials_total")
	mMCRunSeconds = telemetry.NewHistogram("em_mc_run_seconds")
	mMCRate       = telemetry.NewGauge("em_mc_trials_per_second")
)

// SimulateMedianLifetime estimates the group's expected EM-damage-free
// lifetime by Monte Carlo instead of the analytic CDF product: each trial
// draws one lognormal lifetime per conductor and records the earliest
// failure; the estimate is the median of those minima. It exists as an
// independent cross-check of MedianLifetime (the two converge as trials
// grow) and as the starting point for failure analyses the closed form
// cannot express (correlated wearout, replacement policies).
//
// Trials are split across a worker pool sized by parallel.DefaultWorkers
// (GOMAXPROCS, overridable via VOLTSTACK_WORKERS). Every trial draws
// from its own RNG stream derived from (seed, trial index) by a SplitMix64
// hash, so the estimate depends only on (group, trials, seed) — it is
// bit-identical for any worker count and any scheduling.
//
// Unstressed conductors (infinite medians) never fail and are skipped.
func (g *Group) SimulateMedianLifetime(trials int, seed int64) (float64, error) {
	return g.SimulateMedianLifetimeWorkers(trials, seed, 0)
}

// SimulateMedianLifetimeWorkers is SimulateMedianLifetime with an
// explicit worker count; workers < 1 selects the default. The result is
// identical for every worker count (see SimulateMedianLifetime).
func (g *Group) SimulateMedianLifetimeWorkers(trials int, seed int64, workers int) (float64, error) {
	finite := make([]float64, 0, len(g.t50s))
	for _, t := range g.t50s {
		if !math.IsInf(t, 1) {
			finite = append(finite, t)
		}
	}
	if len(finite) == 0 {
		return 0, ErrEmptyGroup
	}
	if trials < 1 {
		trials = 1
	}
	t0 := telemetry.Now()
	prog := telemetry.NewProgress("em-montecarlo", trials)
	minima := make([]float64, trials)
	// Trials are dispatched to the pool in batches rather than one by one:
	// each dispatch has scheduling overhead (channel send, closure call),
	// and amortizing it over trialBatch trials keeps the pool busy with
	// work, not bookkeeping. Because every trial draws from its own
	// (seed, trial)-derived stream, the batching changes nothing about the
	// estimate — it is bit-identical to per-trial dispatch.
	const trialBatch = 64
	nBatches := (trials + trialBatch - 1) / trialBatch
	err := parallel.NewPool(workers).ForEachN(context.Background(), nBatches, func(bi int) error {
		lo := bi * trialBatch
		hi := lo + trialBatch
		if hi > trials {
			hi = trials
		}
		for tr := lo; tr < hi; tr++ {
			rng := rand.New(newTrialSource(seed, int64(tr)))
			first := math.Inf(1)
			for _, t50 := range finite {
				// Lognormal draw: t = t50 · exp(σ·Z).
				t := t50 * math.Exp(g.sigma*rng.NormFloat64())
				if t < first {
					first = t
				}
			}
			minima[tr] = first
		}
		prog.Add(hi - lo)
		return nil
	})
	if err != nil {
		return 0, err
	}
	prog.Finish()
	mMCRuns.Add(1)
	mMCTrials.Add(int64(trials))
	mMCRunSeconds.Since(t0)
	if !t0.IsZero() {
		if dt := time.Since(t0).Seconds(); dt > 0 {
			mMCRate.Set(float64(trials) / dt)
		}
	}
	sort.Float64s(minima)
	mid := len(minima) / 2
	med := minima[mid]
	if len(minima)%2 == 0 {
		med = (minima[mid-1] + minima[mid]) / 2
	}
	if telemetry.EventsEnabled() {
		// Anomaly check: a worst trial more than ~6σ below the median of
		// minima (or non-physical) means a conductor drew an implausible
		// lifetime — usually a sign of corrupted currents or parameters
		// rather than honest sampling noise.
		worst := minima[0]
		limit := med / math.Exp(6*g.sigma)
		if math.IsNaN(worst) || worst <= 0 || worst < limit {
			telemetry.Event(slog.LevelWarn, "em: anomalous Monte Carlo trial",
				slog.Float64("worst_minimum", worst),
				slog.Float64("median", med),
				slog.Float64("sigma", g.sigma),
				slog.Int("trials", trials))
		}
	}
	return med, nil
}

// splitmix is a SplitMix64 generator (Steele et al., "Fast splittable
// pseudorandom number generators"). One instance per Monte Carlo trial
// gives each trial an independent, cheaply-constructed stream: unlike
// rand.NewSource there is no expensive seeding step, so deriving one
// source per trial costs a few arithmetic ops.
type splitmix struct{ state uint64 }

// newTrialSource derives the stream for one (seed, trial) pair. Both
// inputs are finalizer-hashed so adjacent seeds and adjacent trials land
// at unrelated points of the SplitMix64 cycle (a plain seed+trial start
// would make trial t+1 an offset-by-one replay of trial t).
func newTrialSource(seed, trial int64) *splitmix {
	z := mix64(uint64(seed))
	z = mix64(z ^ mix64(uint64(trial)+0x9e3779b97f4a7c15))
	return &splitmix{state: z}
}

// mix64 is the SplitMix64 output finalizer, a strong 64-bit bijection.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed is a no-op: a trial stream is fixed at construction.
func (s *splitmix) Seed(int64) {}
