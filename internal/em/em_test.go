package em

import (
	"math"
	"testing"
	"testing/quick"

	"voltstack/internal/units"
)

func TestBlackEquationScaling(t *testing.T) {
	p := DefaultC4()
	tK := units.CelsiusToKelvin(85)
	t1 := p.MTTF(0.05, tK)
	t2 := p.MTTF(0.10, tK)
	// Doubling current divides MTTF by 2^n.
	want := t1 / math.Pow(2, p.N)
	if !units.WithinRel(t2, want, 1e-9) {
		t.Errorf("MTTF(2I) = %g, want %g", t2, want)
	}
}

func TestBlackTemperatureAcceleration(t *testing.T) {
	p := DefaultTSV()
	cold := p.MTTF(0.01, units.CelsiusToKelvin(60))
	hot := p.MTTF(0.01, units.CelsiusToKelvin(100))
	if hot >= cold {
		t.Errorf("hotter conductor must fail sooner: %g vs %g", hot, cold)
	}
	// Arrhenius ratio check.
	k := units.BoltzmannEV
	want := math.Exp(p.Ea/(k*units.CelsiusToKelvin(60))) / math.Exp(p.Ea/(k*units.CelsiusToKelvin(100)))
	if !units.WithinRel(cold/hot, want, 1e-9) {
		t.Errorf("acceleration factor = %g, want %g", cold/hot, want)
	}
}

func TestZeroCurrentNeverFails(t *testing.T) {
	p := DefaultC4()
	if !math.IsInf(p.MTTF(0, 358), 1) {
		t.Error("zero current should give infinite MTTF")
	}
}

func TestNegativeCurrentUsesMagnitude(t *testing.T) {
	p := DefaultC4()
	if p.MTTF(-0.05, 358) != p.MTTF(0.05, 358) {
		t.Error("MTTF must depend on |I|")
	}
}

func TestLognormalCDFBasics(t *testing.T) {
	if got := LognormalCDF(100, 100, 0.4); !units.ApproxEqual(got, 0.5, 1e-12, 1e-12) {
		t.Errorf("CDF at median = %g, want 0.5", got)
	}
	if LognormalCDF(0, 100, 0.4) != 0 {
		t.Error("CDF at t=0 must be 0")
	}
	if LognormalCDF(-5, 100, 0.4) != 0 {
		t.Error("CDF at negative t must be 0")
	}
	if LognormalCDF(50, math.Inf(1), 0.4) != 0 {
		t.Error("infinite median never fails")
	}
	if lo, hi := LognormalCDF(10, 100, 0.4), LognormalCDF(1000, 100, 0.4); lo >= 0.5 || hi <= 0.5 {
		t.Errorf("CDF not ordered around the median: %g, %g", lo, hi)
	}
}

func TestLognormalCDFMonotone(t *testing.T) {
	f := func(aRaw, bRaw float64) bool {
		a := 1 + math.Abs(math.Mod(aRaw, 1000))
		b := 1 + math.Abs(math.Mod(bRaw, 1000))
		if a > b {
			a, b = b, a
		}
		return LognormalCDF(a, 100, 0.4) <= LognormalCDF(b, 100, 0.4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSingleConductorGroupMedianIsT50(t *testing.T) {
	g := NewGroup(0.4)
	g.AddT50(1234)
	life, err := g.MedianLifetime()
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(life, 1234, 1e-6) {
		t.Errorf("single-conductor lifetime = %g, want 1234", life)
	}
}

func TestGroupWeakestLinkEffect(t *testing.T) {
	// A group of identical conductors fails strictly earlier than any one
	// of them, and larger groups fail earlier than smaller ones.
	lifeFor := func(n int) float64 {
		g := NewGroup(0.4)
		for i := 0; i < n; i++ {
			g.AddT50(1000)
		}
		life, err := g.MedianLifetime()
		if err != nil {
			t.Fatal(err)
		}
		return life
	}
	l1, l10, l100 := lifeFor(1), lifeFor(10), lifeFor(100)
	if !(l100 < l10 && l10 < l1) {
		t.Errorf("weakest-link ordering violated: %g, %g, %g", l1, l10, l100)
	}
	if l1 <= 999 || l1 >= 1001 {
		t.Errorf("single conductor = %g, want ~1000", l1)
	}
}

func TestGroupIdenticalConductorsAnalytic(t *testing.T) {
	// For n identical conductors, P(t) = 1-(1-F(t))^n = 0.5 at
	// F = 1 - 0.5^(1/n); invert the lognormal for the exact answer.
	const n = 64
	const t50 = 1000.0
	const sigma = 0.4
	g := NewGroup(sigma)
	for i := 0; i < n; i++ {
		g.AddT50(t50)
	}
	life, err := g.MedianLifetime()
	if err != nil {
		t.Fatal(err)
	}
	fTarget := 1 - math.Pow(0.5, 1.0/n)
	// Invert Φ via bisection on the standard normal.
	lo, hi := -10.0, 10.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if 0.5*math.Erfc(-mid/math.Sqrt2) < fTarget {
			lo = mid
		} else {
			hi = mid
		}
	}
	want := t50 * math.Exp(sigma*(lo+hi)/2)
	if !units.WithinRel(life, want, 1e-4) {
		t.Errorf("group lifetime = %g, want %g", life, want)
	}
}

func TestGroupDominatedByWeakest(t *testing.T) {
	g := NewGroup(0.4)
	g.AddT50(100)
	for i := 0; i < 50; i++ {
		g.AddT50(1e6)
	}
	life, err := g.MedianLifetime()
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(life, 100, 0.01) {
		t.Errorf("lifetime = %g, should be dominated by the weak conductor at 100", life)
	}
}

func TestGroupIgnoresUnstressed(t *testing.T) {
	g := NewGroup(0.4)
	g.AddT50(500)
	g.AddT50(math.Inf(1))
	g.AddT50(math.Inf(1))
	life, err := g.MedianLifetime()
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(life, 500, 1e-6) {
		t.Errorf("lifetime = %g, want 500", life)
	}
}

func TestEmptyGroupError(t *testing.T) {
	g := NewGroup(0.4)
	if _, err := g.MedianLifetime(); err == nil {
		t.Error("empty group should error")
	}
	g.AddT50(math.Inf(1))
	if _, err := g.MedianLifetime(); err == nil {
		t.Error("group with only unstressed conductors should error")
	}
}

func TestFailureProbMonotoneAndBounded(t *testing.T) {
	g := NewGroup(0.4)
	for _, t50 := range []float64{100, 300, 1000, 5000} {
		g.AddT50(t50)
	}
	prev := -1.0
	for _, tt := range []float64{1, 10, 50, 100, 500, 1000, 1e4, 1e6} {
		p := g.FailureProb(tt)
		if p < 0 || p > 1 {
			t.Errorf("P(%g) = %g out of [0,1]", tt, p)
		}
		if p < prev {
			t.Errorf("P not monotone at %g", tt)
		}
		prev = p
	}
	if p := g.FailureProb(1e9); p < 0.999999 {
		t.Errorf("P(∞) = %g, want →1", p)
	}
}

func TestLargeGroupNoUnderflow(t *testing.T) {
	// 100k conductors with tiny individual failure probabilities: the
	// log-space product must not lose the aggregate hazard.
	g := NewGroup(0.4)
	for i := 0; i < 100000; i++ {
		g.AddT50(1e6)
	}
	p := g.FailureProb(1e4) // each Fi is tiny here
	if p <= 0 {
		t.Error("aggregate failure probability lost to underflow")
	}
	life, err := g.MedianLifetime()
	if err != nil {
		t.Fatal(err)
	}
	if life >= 1e6 || life <= 0 {
		t.Errorf("lifetime = %g, must be well below the common median", life)
	}
}

func TestLifetimeAtProbOrdering(t *testing.T) {
	g := NewGroup(0.4)
	for _, t50 := range []float64{200, 400, 800} {
		g.AddT50(t50)
	}
	t10, err := g.LifetimeAtProb(0.1)
	if err != nil {
		t.Fatal(err)
	}
	t90, err := g.LifetimeAtProb(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if t10 >= t90 {
		t.Errorf("quantile ordering violated: %g >= %g", t10, t90)
	}
	if _, err := g.LifetimeAtProb(0); err == nil {
		t.Error("prob=0 should be rejected")
	}
	if _, err := g.LifetimeAtProb(1); err == nil {
		t.Error("prob=1 should be rejected")
	}
}

func TestHigherCurrentShortensGroupLifetime(t *testing.T) {
	p := DefaultTSV()
	tK := units.CelsiusToKelvin(85)
	build := func(i float64) float64 {
		g := NewGroup(p.SigmaLog)
		for k := 0; k < 32; k++ {
			g.AddConductor(p, i, tK)
		}
		life, err := g.MedianLifetime()
		if err != nil {
			t.Fatal(err)
		}
		return life
	}
	if lo, hi := build(0.02), build(0.005); lo >= hi {
		t.Errorf("4x current should shorten lifetime: %g vs %g", lo, hi)
	}
}

func TestLifetimeRatioFollowsBlackExponent(t *testing.T) {
	// For two identical arrays at currents I and r·I, the group lifetime
	// ratio must be exactly r^n (σ and the group structure cancel).
	p := DefaultC4()
	tK := 358.0
	ratio := 3.0
	build := func(i float64) float64 {
		g := NewGroup(p.SigmaLog)
		for k := 0; k < 64; k++ {
			g.AddConductor(p, i, tK)
		}
		life, err := g.MedianLifetime()
		if err != nil {
			t.Fatal(err)
		}
		return life
	}
	got := build(0.01) / build(0.01*ratio)
	want := math.Pow(ratio, p.N)
	if !units.WithinRel(got, want, 1e-3) {
		t.Errorf("lifetime ratio = %g, want %g", got, want)
	}
}

func TestQuantiles(t *testing.T) {
	g := NewGroup(0.4)
	for _, v := range []float64{10, 20, 30, 40, 50} {
		g.AddT50(v)
	}
	qs := g.Quantiles(0, 0.5, 1)
	if qs[0] != 10 || qs[1] != 30 || qs[2] != 50 {
		t.Errorf("quantiles = %v", qs)
	}
}

func TestValidateBlackParams(t *testing.T) {
	good := DefaultC4()
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := good
	bad.N = 0
	if err := bad.Validate(); err == nil {
		t.Error("N=0 not caught")
	}
	bad = good
	bad.SigmaLog = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative sigma not caught")
	}
}
