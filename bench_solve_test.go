// Fresh-vs-prepared benchmark pairs for the prepared-solve engine. Each
// scenario runs twice — once with Config.ForceFreshSolve (the historical
// rebuild-everything path) and once on the default prepared path — so the
// structure-caching/restamp/warm-start speedup is directly measurable:
//
//	go test -bench '^BenchmarkSolve' -run '^$' .
//	make bench-solve   # same, rendered into BENCH_solve.json
//
// The pairs cover the three hot paths the engine targets: a closed-loop
// pdngrid.Solve (outer iterations restamp converters only), a design-space
// sweep slice (every design solved twice: noise point + EM point), and the
// ext-em-mc experiment (one deep-stack solve feeding the Monte Carlo).
package voltstack_test

import (
	"testing"

	"voltstack/internal/circuit"
	"voltstack/internal/explore"
	"voltstack/internal/pdngrid"
	"voltstack/internal/power"
	"voltstack/internal/sc"
)

// benchClosedLoopCfg is an 8-layer V-S stack on the coarse mesh with
// closed-loop converter control: every solve runs several outer passes, the
// scenario the prepared engine accelerates hardest.
func benchClosedLoopCfg(fresh bool) pdngrid.Config {
	conv := sc.Default28nm()
	conv.Cap = sc.Trench
	prm := pdngrid.DefaultParams()
	prm.GridNx, prm.GridNy = 16, 16
	return pdngrid.Config{
		Kind:              pdngrid.VoltageStacked,
		Layers:            8,
		Chip:              power.Example16Core(),
		Params:            prm,
		TSV:               pdngrid.FewTSV(),
		PadPowerFraction:  0.5,
		ConvertersPerCore: 4,
		Converter:         conv,
		Control:           sc.ClosedLoop{},
		Solve:             circuit.SolveOptions{Solver: circuit.PCGIC0},
		ForceFreshSolve:   fresh,
	}
}

func benchClosedLoop(b *testing.B, fresh bool) {
	benchClosedLoopWith(b, benchClosedLoopCfg(fresh))
}

func benchClosedLoopWith(b *testing.B, cfg pdngrid.Config) {
	p, err := pdngrid.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	acts := pdngrid.InterleavedActivities(cfg.Layers, cfg.Chip.NumCores(), 0.65)
	// Warm-up solve: the pair compares steady-state solve cost, so the
	// prepared side's one-time engine build is excluded from the timing.
	if _, err := p.Solve(acts); err != nil {
		b.Fatal(err)
	}
	var outer int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := p.Solve(acts)
		if err != nil {
			b.Fatal(err)
		}
		outer = r.OuterIterations
	}
	b.ReportMetric(float64(outer), "outer-passes")
}

// BenchmarkSolveClosedLoopFresh rebuilds, re-sorts and refactors the whole
// network on every outer pass of every solve.
func BenchmarkSolveClosedLoopFresh(b *testing.B) { benchClosedLoop(b, true) }

// BenchmarkSolveClosedLoopPrepared assembles once, then restamps converter
// values and warm-starts PCG on each outer pass.
func BenchmarkSolveClosedLoopPrepared(b *testing.B) { benchClosedLoop(b, false) }

// benchSweepSpace is a 16-point slice of the design space (2 TSV
// topologies x 2 pad fractions x (1 regular + 3 V-S counts)) on the coarse
// mesh, evaluated serially so the pair isolates the solve-path speedup from
// pool scaling.
func benchSweepSpace(fresh bool) explore.Space {
	s := explore.DefaultSpace()
	s.Params.GridNx, s.Params.GridNy = 16, 16
	s.PadFractions = []float64{0.25, 0.5}
	s.ConverterCount = []int{2, 4, 8}
	s.TSVs = s.TSVs[:2]
	s.Workers = 1
	s.ForceFreshSolve = fresh
	return s
}

func benchSweep(b *testing.B, fresh bool) {
	s := benchSweepSpace(fresh)
	var points float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		points = float64(len(res.Points))
	}
	b.ReportMetric(points, "design-points")
}

// BenchmarkSolveExploreSweepFresh runs the sweep slice on the
// rebuild-everything path.
func BenchmarkSolveExploreSweepFresh(b *testing.B) { benchSweep(b, true) }

// BenchmarkSolveExploreSweepPrepared runs the same slice with each PDN's
// prepared engine reused between that design's noise and EM solves.
func BenchmarkSolveExploreSweepPrepared(b *testing.B) { benchSweep(b, false) }

func benchExtEMMC(b *testing.B, fresh bool) {
	s := coarse()
	s.ForceFreshSolve = fresh
	var gap float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := s.ExtEMMonteCarlo(2000)
		if err != nil {
			b.Fatal(err)
		}
		gap = r.TSVGapPct
	}
	b.ReportMetric(gap, "tsv-mc-gap-%")
}

// BenchmarkSolveExtEMMCFresh runs the EM Monte Carlo cross-check with the
// deep-stack PDN solved on the fresh path.
func BenchmarkSolveExtEMMCFresh(b *testing.B) { benchExtEMMC(b, true) }

// BenchmarkSolveExtEMMCPrepared runs the same experiment on the prepared
// path.
func BenchmarkSolveExtEMMCPrepared(b *testing.B) { benchExtEMMC(b, false) }
