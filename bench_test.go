// Package voltstack_test benchmarks the full experiment pipeline: one
// benchmark per table and figure of the paper's evaluation (each runs the
// code that regenerates that artifact; cmd/vsexplore prints the actual
// rows), plus ablation benchmarks for the design choices called out in
// DESIGN.md (solver selection, mesh resolution, converter placement).
//
// Benchmarks report the figure's headline quantity as a custom metric so
// regressions in the *numbers*, not just the speed, are visible.
package voltstack_test

import (
	"math"
	"testing"

	"voltstack/internal/circuit"
	"voltstack/internal/core"
	"voltstack/internal/em"
	"voltstack/internal/explore"
	"voltstack/internal/pdngrid"
	"voltstack/internal/sc"
	"voltstack/internal/spice"
	"voltstack/internal/telemetry"
)

func coarse() *core.Study { return core.NewStudy().Coarse() }

// BenchmarkTable1Params regenerates the PDN parameter table.
func BenchmarkTable1Params(b *testing.B) {
	s := coarse()
	for i := 0; i < b.N; i++ {
		if rows := s.Table1(); len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2TSVTopologies regenerates the TSV topology table.
func BenchmarkTable2TSVTopologies(b *testing.B) {
	s := coarse()
	var overhead float64
	for i := 0; i < b.N; i++ {
		rows := s.Table2()
		overhead = rows[0].OverheadPct
	}
	b.ReportMetric(overhead, "dense-overhead-%")
}

// BenchmarkFig3aClosedLoopValidation runs the closed-loop converter
// model-vs-simulation sweep.
func BenchmarkFig3aClosedLoopValidation(b *testing.B) {
	s := coarse()
	var worst float64
	for i := 0; i < b.N; i++ {
		pts, err := s.Fig3a()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range pts {
			if d := math.Abs(p.ModelEff - p.SimEff); d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(100*worst, "max-model-vs-sim-pts")
}

// BenchmarkFig3bOpenLoopValidation runs the open-loop sweep.
func BenchmarkFig3bOpenLoopValidation(b *testing.B) {
	s := coarse()
	var worst float64
	for i := 0; i < b.N; i++ {
		pts, err := s.Fig3b()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range pts {
			if d := math.Abs(p.ModelEff - p.SimEff); d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(100*worst, "max-model-vs-sim-pts")
}

// BenchmarkFig5aTSVLifetime regenerates the TSV EM-lifetime figure.
func BenchmarkFig5aTSVLifetime(b *testing.B) {
	s := coarse()
	var gap float64
	for i := 0; i < b.N; i++ {
		fig, err := s.Fig5a()
		if err != nil {
			b.Fatal(err)
		}
		series := map[string][]float64{}
		for _, sr := range fig.Series {
			series[sr.Label] = sr.Values
		}
		last := len(fig.Layers) - 1
		gap = series["V-S PDN, Few TSV"][last] / series["Reg. PDN, Few TSV"][last]
	}
	b.ReportMetric(gap, "vs-over-reg-8layer")
}

// BenchmarkFig5bC4Lifetime regenerates the C4 EM-lifetime figure.
func BenchmarkFig5bC4Lifetime(b *testing.B) {
	s := coarse()
	var gap float64
	for i := 0; i < b.N; i++ {
		fig, err := s.Fig5b()
		if err != nil {
			b.Fatal(err)
		}
		series := map[string][]float64{}
		for _, sr := range fig.Series {
			series[sr.Label] = sr.Values
		}
		last := len(fig.Layers) - 1
		gap = series["V-S PDN (25% Power C4)"][last] / series["Reg. PDN (25% Power C4)"][last]
	}
	b.ReportMetric(gap, "vs-over-reg-8layer")
}

// BenchmarkFig6NoiseSweep regenerates the IR-drop-vs-imbalance figure.
func BenchmarkFig6NoiseSweep(b *testing.B) {
	s := coarse()
	var vs100 float64
	for i := 0; i < b.N; i++ {
		fig, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		vals := fig.VS[8]
		vs100 = vals[len(vals)-1]
	}
	b.ReportMetric(vs100, "vs8conv-ir-at-100pct-%Vdd")
}

// BenchmarkFig7WorkloadBoxplot regenerates the Parsec imbalance study.
func BenchmarkFig7WorkloadBoxplot(b *testing.B) {
	s := coarse()
	var avg float64
	for i := 0; i < b.N; i++ {
		fig := s.Fig7()
		avg = fig.AverageMaxImbalance
	}
	b.ReportMetric(100*avg, "avg-max-imbalance-%")
}

// BenchmarkFig8Efficiency regenerates the power-efficiency figure.
func BenchmarkFig8Efficiency(b *testing.B) {
	s := coarse()
	var margin float64
	for i := 0; i < b.N; i++ {
		fig, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		last := len(fig.Imbalances) - 1
		margin = fig.VS[8][last] - fig.RegularSC[last]
	}
	b.ReportMetric(100*margin, "vs-margin-at-100pct-pts")
}

// BenchmarkThermalFeasibility runs the air-cooled stack depth check.
func BenchmarkThermalFeasibility(b *testing.B) {
	s := coarse()
	var layers float64
	for i := 0; i < b.N; i++ {
		tc, err := s.Thermal()
		if err != nil {
			b.Fatal(err)
		}
		layers = float64(tc.MaxLayersUnder100C)
	}
	b.ReportMetric(layers, "max-layers-under-100C")
}

// --- ablations -----------------------------------------------------------

// solveVS8 builds and solves the standard 8-layer V-S scenario with the
// given solver and mesh.
func solveVS8(b *testing.B, solver circuit.SolverKind, grid int) *pdngrid.Result {
	b.Helper()
	s := core.NewStudy()
	s.Params.GridNx, s.Params.GridNy = grid, grid
	conv := sc.Default28nm()
	conv.Cap = sc.Trench
	p, err := pdngrid.New(pdngrid.Config{
		Kind:              pdngrid.VoltageStacked,
		Layers:            8,
		Chip:              s.Chip,
		Params:            s.Params,
		TSV:               pdngrid.FewTSV(),
		PadPowerFraction:  0.5,
		ConvertersPerCore: 8,
		Converter:         conv,
		Solve:             circuit.SolveOptions{Solver: solver},
	})
	if err != nil {
		b.Fatal(err)
	}
	r, err := p.Solve(pdngrid.InterleavedActivities(8, 16, 0.65))
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkAblationSolverDirect measures the skyline-Cholesky direct
// solver on the 8-layer system (16x16 mesh keeps factorization tractable).
func BenchmarkAblationSolverDirect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		solveVS8(b, circuit.Direct, 16)
	}
}

// BenchmarkAblationSolverPCGIC0 measures IC(0)-preconditioned CG.
func BenchmarkAblationSolverPCGIC0(b *testing.B) {
	for i := 0; i < b.N; i++ {
		solveVS8(b, circuit.PCGIC0, 16)
	}
}

// BenchmarkAblationSolverPCGJacobi measures Jacobi-preconditioned CG.
func BenchmarkAblationSolverPCGJacobi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		solveVS8(b, circuit.PCGJacobi, 16)
	}
}

// BenchmarkAblationSolverSparseND measures the nested-dissection sparse
// Cholesky direct solver.
func BenchmarkAblationSolverSparseND(b *testing.B) {
	for i := 0; i < b.N; i++ {
		solveVS8(b, circuit.DirectSparseND, 16)
	}
}

// BenchmarkAblationMesh32 measures the full-resolution mesh solve.
func BenchmarkAblationMesh32(b *testing.B) {
	var ir float64
	for i := 0; i < b.N; i++ {
		ir = solveVS8(b, circuit.Auto, 32).MaxIRDropFrac
	}
	b.ReportMetric(100*ir, "ir-%Vdd")
}

// BenchmarkAblationMesh16 measures the coarse-mesh solve for comparison.
func BenchmarkAblationMesh16(b *testing.B) {
	var ir float64
	for i := 0; i < b.N; i++ {
		ir = solveVS8(b, circuit.Auto, 16).MaxIRDropFrac
	}
	b.ReportMetric(100*ir, "ir-%Vdd")
}

// BenchmarkAblationConverterPlacement sweeps converters-per-core, the
// placement-granularity tradeoff of Sec. 5.2.
func BenchmarkAblationConverterPlacement(b *testing.B) {
	s := coarse()
	var spread float64
	for i := 0; i < b.N; i++ {
		pts2, err := s.VSSweep(2, []float64{0.4})
		if err != nil {
			b.Fatal(err)
		}
		pts8, err := s.VSSweep(8, []float64{0.4})
		if err != nil {
			b.Fatal(err)
		}
		spread = pts2[0].MaxIRPct - pts8[0].MaxIRPct
	}
	b.ReportMetric(spread, "ir-spread-2v8conv-%Vdd")
}

// BenchmarkSpiceCell measures the switch-level transient simulator at one
// operating point (the inner loop of the Fig. 3 validation).
func BenchmarkSpiceCell(b *testing.B) {
	cell := spice.CellFromParams(sc.Default28nm(), 2.0)
	for i := 0; i < b.N; i++ {
		if _, err := cell.Simulate(0.05, spice.SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtTransient runs the RLC load-step comparison (extension).
func BenchmarkExtTransient(b *testing.B) {
	s := coarse()
	var margin float64
	for i := 0; i < b.N; i++ {
		r, err := s.ExtTransient()
		if err != nil {
			b.Fatal(err)
		}
		margin = r.RegularFirstDroopPct / r.VSFirstDroopPct
	}
	b.ReportMetric(margin, "reg-over-vs-first-droop")
}

// BenchmarkExtConverters runs the SC-vs-buck comparison (extension).
func BenchmarkExtConverters(b *testing.B) {
	s := coarse()
	var gap float64
	for i := 0; i < b.N; i++ {
		rows := s.ExtConverters()
		last := rows[len(rows)-1]
		gap = 100 * (last.SCEff - last.BuckEff)
	}
	b.ReportMetric(gap, "sc-minus-buck-pts-at-90mA")
}

// BenchmarkExtScheduling runs the three-policy scheduling study (extension).
func BenchmarkExtScheduling(b *testing.B) {
	s := coarse()
	var stress float64
	for i := 0; i < b.N; i++ {
		r, err := s.ExtScheduling()
		if err != nil {
			b.Fatal(err)
		}
		stress = r.Policies[0].MaxConvMA / r.Policies[1].MaxConvMA
	}
	b.ReportMetric(stress, "random-over-aware-conv-stress")
}

// BenchmarkExtElectrothermal runs the leakage-temperature fixed point on
// the 8-layer stack (extension).
func BenchmarkExtElectrothermal(b *testing.B) {
	s := coarse()
	var amp float64
	for i := 0; i < b.N; i++ {
		r, err := s.ExtElectrothermal(8)
		if err != nil {
			b.Fatal(err)
		}
		amp = r.LeakageAmplification
	}
	b.ReportMetric(amp, "leakage-amplification-8layer")
}

// BenchmarkExtTraceNoise runs the quasi-static Markov-trace noise study
// (extension).
func BenchmarkExtTraceNoise(b *testing.B) {
	s := coarse()
	var p95 float64
	for i := 0; i < b.N; i++ {
		r, err := s.ExtTraceNoise(30)
		if err != nil {
			b.Fatal(err)
		}
		p95 = r.P95
	}
	b.ReportMetric(p95, "vs-p95-droop-%Vdd")
}

// BenchmarkExtGuardband runs the alpha-power guardband comparison
// (extension).
func BenchmarkExtGuardband(b *testing.B) {
	s := coarse()
	var delta float64
	for i := 0; i < b.N; i++ {
		r, err := s.ExtGuardband()
		if err != nil {
			b.Fatal(err)
		}
		delta = r.Rows[1].FreqLossPct - r.Rows[0].FreqLossPct
	}
	b.ReportMetric(delta, "vs-extra-freq-loss-pts")
}

// BenchmarkExtThermalEM runs the thermally-aware EM study (extension).
func BenchmarkExtThermalEM(b *testing.B) {
	s := coarse()
	var penalty float64
	for i := 0; i < b.N; i++ {
		r, err := s.ExtThermalEM()
		if err != nil {
			b.Fatal(err)
		}
		penalty = r.RegAwarePenalty
	}
	b.ReportMetric(penalty, "reg-thermal-penalty-x")
}

// BenchmarkDesignSpaceExploration runs the Pareto exploration (extension).
func BenchmarkDesignSpaceExploration(b *testing.B) {
	space := explore.DefaultSpace()
	space.Params.GridNx, space.Params.GridNy = 16, 16
	space.PadFractions = []float64{0.5}
	space.TSVs = space.TSVs[:2]
	var front float64
	for i := 0; i < b.N; i++ {
		res, err := space.Run()
		if err != nil {
			b.Fatal(err)
		}
		front = float64(len(res.Pareto))
	}
	b.ReportMetric(front, "pareto-size")
}

// --- parallel vs. serial -------------------------------------------------
//
// Each pair runs the same fan-out once serially (Workers = 1) and once on
// the default pool (Workers = 0: GOMAXPROCS or VOLTSTACK_WORKERS), so the
// parallel speedup is directly measurable with
//
//	go test -bench 'Serial|Parallel' -run '^$'
//
// The results are identical in both modes — only the wall clock moves.

func benchFig5a(b *testing.B, workers int) {
	s := coarse()
	s.Workers = workers
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig5a(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5aSerial is the single-worker baseline of the Fig. 5a
// scenario × layer grid (17 independent PDN solves).
func BenchmarkFig5aSerial(b *testing.B) { benchFig5a(b, 1) }

// BenchmarkFig5aParallel runs the same grid on the default worker pool.
func BenchmarkFig5aParallel(b *testing.B) { benchFig5a(b, 0) }

func benchExploreSweep(b *testing.B, workers int) {
	space := explore.DefaultSpace()
	space.Params.GridNx, space.Params.GridNy = 16, 16
	space.PadFractions = []float64{0.5}
	space.TSVs = space.TSVs[:2]
	space.Workers = workers
	var front float64
	for i := 0; i < b.N; i++ {
		res, err := space.Run()
		if err != nil {
			b.Fatal(err)
		}
		front = float64(len(res.Pareto))
	}
	b.ReportMetric(front, "pareto-size")
}

// BenchmarkExploreSweepSerial is the single-worker design-space sweep
// (10 design evaluations, each several PDN solves).
func BenchmarkExploreSweepSerial(b *testing.B) { benchExploreSweep(b, 1) }

// BenchmarkExploreSweepParallel runs the sweep on the default pool.
func BenchmarkExploreSweepParallel(b *testing.B) { benchExploreSweep(b, 0) }

func benchEMMonteCarlo(b *testing.B, workers int) {
	g := em.NewGroup(0.4)
	for i := 0; i < 400; i++ {
		g.AddT50(500 + 10*float64(i))
	}
	var mttf float64
	for i := 0; i < b.N; i++ {
		var err error
		mttf, err = g.SimulateMedianLifetimeWorkers(20000, 1, workers)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mttf, "mc-median-lifetime")
}

// BenchmarkEMMonteCarloSerial draws 20k trials of a 400-conductor group
// on one worker.
func BenchmarkEMMonteCarloSerial(b *testing.B) { benchEMMonteCarlo(b, 1) }

// BenchmarkEMMonteCarloParallel splits the same trials across the
// default pool; the per-trial RNG streams keep the median bit-identical.
func BenchmarkEMMonteCarloParallel(b *testing.B) { benchEMMonteCarlo(b, 0) }

// BenchmarkAblationTSVAllocation sweeps the Table 2 TSV topologies on the
// regular PDN, the allocation-vs-noise tradeoff of Sec. 4.2.
func BenchmarkAblationTSVAllocation(b *testing.B) {
	s := core.NewStudy().Coarse()
	var spread float64
	for i := 0; i < b.N; i++ {
		irs := map[string]float64{}
		for _, tsv := range []pdngrid.TSVTopology{pdngrid.DenseTSV(), pdngrid.FewTSV()} {
			p, err := s.RegularPDN(8, tsv, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			r, err := p.Solve(pdngrid.UniformActivities(8, 16, 1))
			if err != nil {
				b.Fatal(err)
			}
			irs[tsv.Name] = 100 * r.MaxIRDropFrac
		}
		spread = irs["Few"] - irs["Dense"]
	}
	b.ReportMetric(spread, "few-minus-dense-ir-%Vdd")
}

// --- telemetry overhead ---------------------------------------------------
//
// BenchmarkFig5aTelemetryOff / BenchmarkFig5aTelemetryOn run the fully
// instrumented Fig. 5a driver with the process telemetry registry in its
// default disabled state and with metrics collection enabled. The disabled
// path costs one atomic load per instrument call, so TelemetryOff must stay
// within 2% of the pre-instrumentation baseline — compare with
//
//	go test -bench 'Fig5aTelemetry' -run '^$' -count 5
//
// (representative run on a 2.70GHz Xeon: Off 1.40-1.50 s/op vs On
// 1.38-1.39 s/op — the pair is statistically indistinguishable; the
// instrumentation cost is lost in run-to-run noise).

func benchFig5aTelemetry(b *testing.B, enable bool) {
	if enable {
		telemetry.Enable()
		b.Cleanup(func() {
			telemetry.Disable()
			telemetry.Default().Reset()
		})
	}
	benchFig5a(b, 0)
}

// BenchmarkFig5aTelemetryOff measures the instrumented driver with the
// registry disabled (the default for library use).
func BenchmarkFig5aTelemetryOff(b *testing.B) { benchFig5aTelemetry(b, false) }

// BenchmarkFig5aTelemetryOn measures the same run with metrics recording
// enabled, bounding the full collection overhead.
func BenchmarkFig5aTelemetryOn(b *testing.B) { benchFig5aTelemetry(b, true) }
