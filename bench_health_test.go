// Probes-off/probes-on benchmark pair for the solver-health convergence
// probes. The pair rides in BENCH_solve.json next to the fresh/prepared
// pairs and is gated by `benchjson -diff` on two properties: the
// disabled-probe solve must stay as fast as the baseline relative to the
// enabled one (overhead ratio), and — via the reported allocs/op — the
// disabled path must stay allocation-free beyond the solve's own kernel
// closures. A change that allocates or measures before checking the
// probe gate shows up here immediately.
package voltstack_test

import (
	"testing"

	"voltstack/internal/sparse"
	"voltstack/internal/sparse/sparsetest"
	"voltstack/internal/telemetry"
)

func benchHealthProbes(b *testing.B, on bool) {
	a := sparsetest.Grid3D(12, 12, 6, 1e-3)
	n := a.N()
	rhs := sparsetest.RandomRHS(n, 5)
	ic0, err := sparse.NewIC0(a)
	if err != nil {
		b.Fatal(err)
	}
	ws := sparse.NewPCGWorkspace(n)
	if on {
		telemetry.EnableConvergenceProbes()
	} else {
		telemetry.DisableConvergenceProbes()
	}
	defer telemetry.DisableConvergenceProbes()
	// Warm-up: workspace buffers and the IC(0) schedule are steady-state
	// costs, not part of the per-solve comparison.
	if _, _, err := sparse.PCGW(a, rhs, nil, ic0, 1e-10, 20*n, ws); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sparse.PCGW(a, rhs, nil, ic0, 1e-10, 20*n, ws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveHealthProbesOff is the baseline: the identical solve with
// the convergence probes disabled (the default).
func BenchmarkSolveHealthProbesOff(b *testing.B) { benchHealthProbes(b, false) }

// BenchmarkSolveHealthProbesOn runs the same solve with per-iteration
// residual/coefficient capture, condition estimation and detectors live.
func BenchmarkSolveHealthProbesOn(b *testing.B) { benchHealthProbes(b, true) }
