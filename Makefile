GO ?= go

.PHONY: build test test-short test-race bench bench-parallel fuzz golden

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# test-race is the concurrency gate: the worker pool, the parallel figure
# drivers and the Monte Carlo fan-out all run under the race detector.
test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$'

# bench-parallel runs only the serial-vs-parallel pairs (Fig. 5a, the
# explore sweep, the EM Monte Carlo) for a quick speedup readout.
bench-parallel:
	$(GO) test -bench 'Serial$$|Parallel$$' -run '^$$' .

fuzz:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzParseCSV -fuzztime 30s

# golden regenerates the pinned paper-number snapshots after a deliberate
# model change.
golden:
	$(GO) test ./internal/core -run TestGolden -update
