GO ?= go

.PHONY: build vet test test-short test-race bench bench-parallel bench-telemetry bench-solve bench-scaling bench-kernels bench-diff fuzz golden profile metrics-demo provenance-demo serve-demo trace-demo health-demo fleet-demo

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# test-race is the concurrency gate: the worker pool, the parallel figure
# drivers, the Monte Carlo fan-out and the telemetry instruments all run
# under the race detector.
test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$'

# bench-parallel runs only the serial-vs-parallel pairs (Fig. 5a, the
# explore sweep, the EM Monte Carlo) for a quick speedup readout.
bench-parallel:
	$(GO) test -bench 'Serial$$|Parallel$$' -run '^$$' .

# bench-solve measures the prepared-solve engine against the historical
# rebuild-everything path (closed-loop solve, explore sweep slice, ext-em-mc)
# plus the multi-RHS serial-vs-batch scaling pairs and the intra-solve
# kernel workers-1-vs-8 pairs, and renders the fresh-vs-prepared,
# serial-vs-batch and kernel speedups into BENCH_solve.json.
bench-solve:
	$(GO) test -bench '^BenchmarkSolve' -run '^$$' -count 3 -timeout 60m . | $(GO) run ./cmd/benchjson > BENCH_solve.json
	@cat BENCH_solve.json

# bench-scaling runs only the multi-RHS node-count scaling pairs (batched
# vs per-RHS setup+solve at 10k/100k/1M nodes; the 1M AMG point is skipped
# under -short).
bench-scaling:
	$(GO) test -bench '^BenchmarkSolveScale' -run '^$$' -count 3 -timeout 60m . | $(GO) run ./cmd/benchjson

# bench-kernels runs only the intra-solve kernel scaling pairs: the same
# solve (or kernel) with the kernel worker count at 1 and 8. Results are
# bit-identical by construction, so the pair ratio is the pure scheduling
# cost or win at that node count. The 1M-node points are skipped under
# -short.
bench-kernels:
	$(GO) test -bench '^BenchmarkSolveScale.*Workers[18]$$' -run '^$$' -count 3 -timeout 60m . | $(GO) run ./cmd/benchjson

# bench-diff runs a quick (-benchtime=1x -short) solve-bench smoke, renders
# it with benchjson and gates its fresh-vs-prepared / serial-vs-batch
# speedups against the committed BENCH_solve.json baseline: any speedup
# more than 30% below the baseline fails. This is the CI regression gate.
bench-diff:
	$(GO) test -bench '^BenchmarkSolve' -benchtime=1x -short -run '^$$' -timeout 20m . | $(GO) run ./cmd/benchjson > bench-smoke.json
	$(GO) run ./cmd/benchjson -diff BENCH_solve.json bench-smoke.json -tolerance 0.30

# bench-telemetry compares the instrumented Fig. 5a driver with the metrics
# registry disabled vs. enabled; the Off case bounds the always-on cost of
# the instrumentation hooks.
bench-telemetry:
	$(GO) test -bench 'Fig5aTelemetry' -run '^$$' -count 5 .

# fuzz runs every fuzz target for 30s: CSV parsing, job-request decoding,
# the cache-fingerprint keying contract, batch-vs-serial solver
# equivalence, and the IC(0) level-schedule topology/bit-equality
# contract. (`go test -fuzz` takes one target per invocation.)
fuzz:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzParseCSV -fuzztime 30s
	$(GO) test ./internal/server -run '^$$' -fuzz FuzzDecodeJobRequest -fuzztime 30s
	$(GO) test ./internal/pdngrid -run '^$$' -fuzz FuzzCacheFingerprint -fuzztime 30s
	$(GO) test ./internal/sparse/sparsetest -run '^$$' -fuzz FuzzBatchSerialEquivalence -fuzztime 30s
	$(GO) test ./internal/sparse/sparsetest -run '^$$' -fuzz FuzzLevelSchedule -fuzztime 30s

# golden regenerates the pinned paper-number snapshots after a deliberate
# model change.
golden:
	$(GO) test ./internal/core -run TestGolden -update

# profile runs a representative sweep (the EM-lifetime figures plus the
# transient experiment) under the CPU profiler and leaves vsexplore.prof
# ready for `go tool pprof ./bin/vsexplore vsexplore.prof`.
profile: build
	$(GO) build -o bin/vsexplore ./cmd/vsexplore
	./bin/vsexplore -coarse -exp fig5a,fig5b,fig8 -cpuprofile vsexplore.prof > /dev/null
	@echo "wrote vsexplore.prof; inspect with: $(GO) tool pprof ./bin/vsexplore vsexplore.prof"

# metrics-demo runs a small sweep with full telemetry and prints the JSON
# metrics dump (the Prometheus rendering lands next to it as
# /tmp/voltstack-metrics.json.prom).
metrics-demo: build
	$(GO) run ./cmd/vsexplore -coarse -exp fig5a,ext-em-mc \
		-metrics /tmp/voltstack-metrics.json -trace /tmp/voltstack-trace.json > /dev/null
	@cat /tmp/voltstack-metrics.json
	@echo "trace: load /tmp/voltstack-trace.json in https://ui.perfetto.dev or chrome://tracing"

# provenance-demo runs the same scenario twice with -manifest and diffs the
# two provenance records with vsreport: identical-seed runs must report
# "all output hashes equal" (vsreport exits 1 on any mismatch).
provenance-demo: build
	$(GO) run ./cmd/vsim -grid 16 -manifest /tmp/voltstack-run-a.json > /dev/null
	$(GO) run ./cmd/vsim -grid 16 -manifest /tmp/voltstack-run-b.json > /dev/null
	$(GO) run ./cmd/vsreport /tmp/voltstack-run-a.json /tmp/voltstack-run-b.json

# trace-demo shows the end-to-end trace + per-job attribution path: the
# daemon runs with -trace, vsctl (which mints a trace ID and sends
# traceparent on every request) runs a job, and the demo prints the job's
# stats document and the top table, then drains the daemon so the trace
# file flushes — load it in https://ui.perfetto.dev to see the HTTP, queue
# -wait, job and solver spans stitched by one trace ID.
trace-demo: build
	$(GO) build -o bin/vsserved ./cmd/vsserved
	$(GO) build -o bin/vsctl ./cmd/vsctl
	rm -rf /tmp/voltstack-trace-demo && mkdir -p /tmp/voltstack-trace-demo
	./bin/vsserved -addr localhost:18325 \
		-state-dir /tmp/voltstack-trace-demo/state \
		-cache-dir /tmp/voltstack-trace-demo/cache \
		-trace /tmp/voltstack-trace-demo/trace.json & pid=$$!; \
	export VSSERVED_ADDR=http://localhost:18325; \
	for i in $$(seq 1 100); do ./bin/vsctl list >/dev/null 2>&1 && break; sleep 0.1; done; \
	./bin/vsctl run -exp fig5a -csv -coarse > /dev/null; \
	id=$$(./bin/vsctl list | grep -o '"id": "[^"]*"' | head -1 | cut -d'"' -f4); \
	./bin/vsctl stats $$id; \
	./bin/vsctl top; \
	kill -TERM $$pid; wait $$pid
	@echo "trace: load /tmp/voltstack-trace-demo/trace.json in https://ui.perfetto.dev"

# health-demo exercises the solver-health observability path end to end:
# the daemon (convergence probes always on) journals per-job snapshots into
# a persistent history store, vsctl renders a finished job's health report
# (condition estimate, residual curve, detector verdicts), /statusz serves
# the live convergence section, and after the drain vsreport trend analyzes
# the accumulated history for iteration/conditioning regressions.
health-demo: build
	$(GO) build -o bin/vsserved ./cmd/vsserved
	$(GO) build -o bin/vsctl ./cmd/vsctl
	$(GO) build -o bin/vsreport ./cmd/vsreport
	rm -rf /tmp/voltstack-health-demo && mkdir -p /tmp/voltstack-health-demo
	./bin/vsserved -addr localhost:18326 \
		-state-dir /tmp/voltstack-health-demo/state \
		-history /tmp/voltstack-health-demo/history & pid=$$!; \
	export VSSERVED_ADDR=http://localhost:18326; \
	for i in $$(seq 1 100); do ./bin/vsctl list >/dev/null 2>&1 && break; sleep 0.1; done; \
	./bin/vsctl run -sweep -layers 8 -grid 24 -pads 0.5 -converters 4 -tsvs dense > /dev/null; \
	./bin/vsctl run -sweep -layers 8 -grid 24 -pads 0.25 -converters 4 -tsvs dense > /dev/null; \
	id=$$(./bin/vsctl list | grep -o '"id": "[^"]*"' | head -1 | cut -d'"' -f4); \
	./bin/vsctl health $$id; \
	echo "statusz convergence:"; \
	curl -s http://localhost:18326/statusz | sed -n '/"convergence"/,/}/p'; \
	kill -TERM $$pid; wait $$pid
	./bin/vsreport trend /tmp/voltstack-health-demo/history

# fleet-demo stands up a three-daemon fleet on loopback — one coordinator,
# two workers that join it — plus a standalone daemon as the oracle, runs
# the same sweep through both paths and byte-compares the results (the
# fleet's core contract: sharding must be invisible in the output), then
# prints the `vsctl fleet` status table and drains everything.
fleet-demo: build
	$(GO) build -o bin/vsserved ./cmd/vsserved
	$(GO) build -o bin/vsctl ./cmd/vsctl
	rm -rf /tmp/voltstack-fleet-demo && mkdir -p /tmp/voltstack-fleet-demo
	./bin/vsserved -addr localhost:18327 -role coordinator \
		-state-dir /tmp/voltstack-fleet-demo/coord-state \
		-cache-dir /tmp/voltstack-fleet-demo/cache & cpid=$$!; \
	./bin/vsserved -addr localhost:18328 -role worker -name w1 \
		-join http://localhost:18327 & w1pid=$$!; \
	./bin/vsserved -addr localhost:18329 -role worker -name w2 \
		-join http://localhost:18327 & w2pid=$$!; \
	./bin/vsserved -addr localhost:18330 & spid=$$!; \
	export VSSERVED_ADDR=http://localhost:18327; \
	for i in $$(seq 1 100); do \
		./bin/vsctl fleet 2>/dev/null | grep -q w2 && break; sleep 0.1; \
	done; \
	./bin/vsctl run -sweep -layers 4 -grid 16 -pads 0.25,0.5 \
		-converters 2,4 -tsvs dense > /tmp/voltstack-fleet-demo/sharded.json; \
	VSSERVED_ADDR=http://localhost:18330 ./bin/vsctl run -sweep -layers 4 \
		-grid 16 -pads 0.25,0.5 -converters 2,4 -tsvs dense \
		> /tmp/voltstack-fleet-demo/standalone.json; \
	cmp /tmp/voltstack-fleet-demo/sharded.json \
		/tmp/voltstack-fleet-demo/standalone.json \
		&& echo "fleet-demo: sharded result byte-identical to standalone"; \
	./bin/vsctl fleet; \
	kill -TERM $$w1pid $$w2pid $$spid $$cpid; \
	wait $$w1pid $$w2pid $$spid $$cpid

# serve-demo starts the evaluation daemon, runs the same job twice through
# vsctl (the second is a content-addressed cache hit: identical bytes, zero
# solver work) and shuts the daemon down with a graceful SIGTERM drain.
serve-demo: build
	$(GO) build -o bin/vsserved ./cmd/vsserved
	$(GO) build -o bin/vsctl ./cmd/vsctl
	rm -rf /tmp/voltstack-serve-demo && mkdir -p /tmp/voltstack-serve-demo
	./bin/vsserved -addr localhost:18324 \
		-state-dir /tmp/voltstack-serve-demo/state \
		-cache-dir /tmp/voltstack-serve-demo/cache & pid=$$!; \
	export VSSERVED_ADDR=http://localhost:18324; \
	for i in $$(seq 1 100); do ./bin/vsctl list >/dev/null 2>&1 && break; sleep 0.1; done; \
	./bin/vsctl run -exp fig5a -csv -coarse > /tmp/voltstack-serve-demo/a.csv; \
	./bin/vsctl run -exp fig5a -csv -coarse > /tmp/voltstack-serve-demo/b.csv; \
	cmp /tmp/voltstack-serve-demo/a.csv /tmp/voltstack-serve-demo/b.csv \
		&& echo "serve-demo: cached replay byte-identical"; \
	kill -TERM $$pid; wait $$pid
