// Node-count scaling pairs for the multi-RHS batch solvers. Each scenario
// solves the same 8 right-hand sides twice: the Serial variant pays the
// full per-RHS cost (factorization or preconditioner build + solve, the
// pattern of a caller without the batch API), the Batch variant sets up
// once and runs all lanes through SolveBatch/PCGBatch. The pair ratio is
// the amortization win at that node count:
//
//	go test -bench '^BenchmarkSolveScale' -run '^$' .
//	make bench-scaling   # renders serial/batch pairs into BENCH_solve.json
//
// The curve spans 10k to 1M nodes on the PDN-shaped meshes from
// internal/sparse/sparsetest; the 1M AMG point is skipped under -short.
package voltstack_test

import (
	"testing"

	"voltstack/internal/sparse"
	"voltstack/internal/sparse/sparsetest"
)

const scalingLanes = 8

func scalingSystem(b *testing.B, nx, ny int) (*sparse.CSR, [][]float64) {
	b.Helper()
	a := sparsetest.Grid2D(nx, ny, 1e-3)
	return a, sparsetest.RandomBatch(a.N(), scalingLanes, 7)
}

func reportScale(b *testing.B, nodes int) {
	b.ReportMetric(float64(nodes), "nodes")
	b.ReportMetric(scalingLanes, "lanes")
}

// --- IC(0)-preconditioned CG ---

func benchIC0Serial(b *testing.B, nx, ny int) {
	a, bs := scalingSystem(b, nx, ny)
	tol, maxIter := 1e-8, 10*a.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rhs := range bs {
			prec, err := sparse.NewIC0(a)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := sparse.PCG(a, rhs, nil, prec, tol, maxIter); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportScale(b, a.N())
}

func benchIC0Batch(b *testing.B, nx, ny int) {
	a, bs := scalingSystem(b, nx, ny)
	tol, maxIter := 1e-8, 10*a.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prec, err := sparse.NewIC0(a)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sparse.PCGBatch(a, bs, nil, prec, tol, maxIter, nil, 1); err != nil {
			b.Fatal(err)
		}
	}
	reportScale(b, a.N())
}

func BenchmarkSolveScaleIC0PCG10kSerial(b *testing.B) { benchIC0Serial(b, 100, 100) }
func BenchmarkSolveScaleIC0PCG10kBatch(b *testing.B)  { benchIC0Batch(b, 100, 100) }

func BenchmarkSolveScaleIC0PCG100kSerial(b *testing.B) { benchIC0Serial(b, 317, 317) }
func BenchmarkSolveScaleIC0PCG100kBatch(b *testing.B)  { benchIC0Batch(b, 317, 317) }

// --- sparse Cholesky (nested dissection) ---

func benchCholSerial(b *testing.B, nx, ny int) {
	a, bs := scalingSystem(b, nx, ny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rhs := range bs {
			f, err := sparse.FactorSparse(a, sparse.OrderND)
			if err != nil {
				b.Fatal(err)
			}
			f.Solve(rhs)
		}
	}
	reportScale(b, a.N())
}

func benchCholBatch(b *testing.B, nx, ny int) {
	a, bs := scalingSystem(b, nx, ny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := sparse.FactorSparse(a, sparse.OrderND)
		if err != nil {
			b.Fatal(err)
		}
		f.SolveBatchWorkers(bs, 1)
	}
	reportScale(b, a.N())
}

func BenchmarkSolveScaleSparseChol10kSerial(b *testing.B) { benchCholSerial(b, 100, 100) }
func BenchmarkSolveScaleSparseChol10kBatch(b *testing.B)  { benchCholBatch(b, 100, 100) }

func BenchmarkSolveScaleSparseChol100kSerial(b *testing.B) { benchCholSerial(b, 317, 317) }
func BenchmarkSolveScaleSparseChol100kBatch(b *testing.B)  { benchCholBatch(b, 317, 317) }

// --- AMG-preconditioned CG, the 1M-node end of the curve ---

func benchAMGSerial(b *testing.B, nx, ny int) {
	if testing.Short() {
		b.Skip("1M-node mesh")
	}
	a, bs := scalingSystem(b, nx, ny)
	tol, maxIter := 1e-8, 10*a.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rhs := range bs {
			prec, err := sparse.NewAMG(a, sparse.AMGOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := sparse.PCG(a, rhs, nil, prec, tol, maxIter); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportScale(b, a.N())
}

func benchAMGBatch(b *testing.B, nx, ny int) {
	if testing.Short() {
		b.Skip("1M-node mesh")
	}
	a, bs := scalingSystem(b, nx, ny)
	tol, maxIter := 1e-8, 10*a.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prec, err := sparse.NewAMG(a, sparse.AMGOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sparse.PCGBatch(a, bs, nil, prec, tol, maxIter, nil, 1); err != nil {
			b.Fatal(err)
		}
	}
	reportScale(b, a.N())
}

func BenchmarkSolveScaleAMGPCG1MSerial(b *testing.B) { benchAMGSerial(b, 1000, 1000) }
func BenchmarkSolveScaleAMGPCG1MBatch(b *testing.B)  { benchAMGBatch(b, 1000, 1000) }

// --- intra-solve kernel scaling pairs ---
//
// Each WorkersN pair runs the identical solve (or kernel) with the
// intra-solve worker count at 1 and 8; the pair ratio is the kernel
// speedup at that node count. Results are bit-identical by construction
// (pinned by the sparsetest worker-equivalence properties), so the pairs
// measure pure scheduling cost/win:
//
//	make bench-kernels   # renders kernel pairs into BENCH_solve.json

func reportKernelScale(b *testing.B, nodes, workers int) {
	b.ReportMetric(float64(nodes), "nodes")
	b.ReportMetric(float64(workers), "workers")
}

// benchSpMV measures the row-partitioned parallel SpMV alone on the
// 1M-node mesh.
func benchSpMV(b *testing.B, nx, ny, workers int) {
	if testing.Short() {
		b.Skip("1M-node mesh")
	}
	a := sparsetest.Grid2D(nx, ny, 1e-3)
	x := sparsetest.RandomRHS(a.N(), 3)
	y := make([]float64, a.N())
	a.MulVecW(x, y, workers) // warm: partition cache, pages, goroutine spawn
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecW(x, y, workers)
	}
	reportKernelScale(b, a.N(), workers)
}

func BenchmarkSolveScaleSpMV1MWorkers1(b *testing.B) { benchSpMV(b, 1000, 1000, 1) }
func BenchmarkSolveScaleSpMV1MWorkers8(b *testing.B) { benchSpMV(b, 1000, 1000, 8) }

// benchTrisolve measures the level-scheduled IC(0) triangular solve on
// a 100k-node 3D mesh, whose level sets are wide enough to schedule.
// One op is 10 applies: a single apply is a few ms, so bundling keeps
// the -benchtime=1x CI smoke's pair ratio out of scheduler noise.
func benchTrisolve(b *testing.B, workers int) {
	a := sparsetest.Grid3D(50, 50, 40, 1e-3)
	prec, err := sparse.NewIC0(a)
	if err != nil {
		b.Fatal(err)
	}
	prec.SetWorkers(workers)
	r := sparsetest.RandomRHS(a.N(), 5)
	z := make([]float64, a.N())
	prec.Apply(r, z) // warm: pages, goroutine spawn
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 10; j++ {
			prec.Apply(r, z)
		}
	}
	reportKernelScale(b, a.N(), workers)
}

func BenchmarkSolveScaleTrisolve100kWorkers1(b *testing.B) { benchTrisolve(b, 1) }
func BenchmarkSolveScaleTrisolve100kWorkers8(b *testing.B) { benchTrisolve(b, 8) }

// benchAMGWorkers measures a full single-RHS AMG-PCG solve on the
// 1M-node mesh with every kernel (SpMV, blocked reductions, smoother,
// transfers) at the given worker count.
func benchAMGWorkers(b *testing.B, nx, ny, workers int) {
	if testing.Short() {
		b.Skip("1M-node mesh")
	}
	a := sparsetest.Grid2D(nx, ny, 1e-3)
	rhs := sparsetest.RandomRHS(a.N(), 7)
	tol, maxIter := 1e-8, 10*a.N()
	ws := sparse.NewPCGWorkspace(a.N())
	ws.SetWorkers(workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prec, err := sparse.NewAMG(a, sparse.AMGOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sparse.PCGW(a, rhs, nil, prec, tol, maxIter, ws); err != nil {
			b.Fatal(err)
		}
	}
	reportKernelScale(b, a.N(), workers)
}

func BenchmarkSolveScaleAMGPCG1MWorkers1(b *testing.B) { benchAMGWorkers(b, 1000, 1000, 1) }
func BenchmarkSolveScaleAMGPCG1MWorkers8(b *testing.B) { benchAMGWorkers(b, 1000, 1000, 8) }

// benchIC0Budget runs the 8-lane IC(0)-PCG batch under a total worker
// budget: budget 1 is fully serial, budget 8 composes lane and kernel
// parallelism. This is the pair the cache-line-padded PCGWorkspace is
// measured by.
func benchIC0Budget(b *testing.B, nx, ny, budget int) {
	a, bs := scalingSystem(b, nx, ny)
	tol, maxIter := 1e-8, 10*a.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prec, err := sparse.NewIC0(a)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sparse.PCGBatch(a, bs, nil, prec, tol, maxIter, nil, budget); err != nil {
			b.Fatal(err)
		}
	}
	reportKernelScale(b, a.N(), budget)
}

func BenchmarkSolveScaleIC0PCG100kWorkers1(b *testing.B) { benchIC0Budget(b, 317, 317, 1) }
func BenchmarkSolveScaleIC0PCG100kWorkers8(b *testing.B) { benchIC0Budget(b, 317, 317, 8) }
