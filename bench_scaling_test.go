// Node-count scaling pairs for the multi-RHS batch solvers. Each scenario
// solves the same 8 right-hand sides twice: the Serial variant pays the
// full per-RHS cost (factorization or preconditioner build + solve, the
// pattern of a caller without the batch API), the Batch variant sets up
// once and runs all lanes through SolveBatch/PCGBatch. The pair ratio is
// the amortization win at that node count:
//
//	go test -bench '^BenchmarkSolveScale' -run '^$' .
//	make bench-scaling   # renders serial/batch pairs into BENCH_solve.json
//
// The curve spans 10k to 1M nodes on the PDN-shaped meshes from
// internal/sparse/sparsetest; the 1M AMG point is skipped under -short.
package voltstack_test

import (
	"testing"

	"voltstack/internal/sparse"
	"voltstack/internal/sparse/sparsetest"
)

const scalingLanes = 8

func scalingSystem(b *testing.B, nx, ny int) (*sparse.CSR, [][]float64) {
	b.Helper()
	a := sparsetest.Grid2D(nx, ny, 1e-3)
	return a, sparsetest.RandomBatch(a.N(), scalingLanes, 7)
}

func reportScale(b *testing.B, nodes int) {
	b.ReportMetric(float64(nodes), "nodes")
	b.ReportMetric(scalingLanes, "lanes")
}

// --- IC(0)-preconditioned CG ---

func benchIC0Serial(b *testing.B, nx, ny int) {
	a, bs := scalingSystem(b, nx, ny)
	tol, maxIter := 1e-8, 10*a.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rhs := range bs {
			prec, err := sparse.NewIC0(a)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := sparse.PCG(a, rhs, nil, prec, tol, maxIter); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportScale(b, a.N())
}

func benchIC0Batch(b *testing.B, nx, ny int) {
	a, bs := scalingSystem(b, nx, ny)
	tol, maxIter := 1e-8, 10*a.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prec, err := sparse.NewIC0(a)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sparse.PCGBatch(a, bs, nil, prec, tol, maxIter, nil, 1); err != nil {
			b.Fatal(err)
		}
	}
	reportScale(b, a.N())
}

func BenchmarkSolveScaleIC0PCG10kSerial(b *testing.B) { benchIC0Serial(b, 100, 100) }
func BenchmarkSolveScaleIC0PCG10kBatch(b *testing.B)  { benchIC0Batch(b, 100, 100) }

func BenchmarkSolveScaleIC0PCG100kSerial(b *testing.B) { benchIC0Serial(b, 317, 317) }
func BenchmarkSolveScaleIC0PCG100kBatch(b *testing.B)  { benchIC0Batch(b, 317, 317) }

// --- sparse Cholesky (nested dissection) ---

func benchCholSerial(b *testing.B, nx, ny int) {
	a, bs := scalingSystem(b, nx, ny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rhs := range bs {
			f, err := sparse.FactorSparse(a, sparse.OrderND)
			if err != nil {
				b.Fatal(err)
			}
			f.Solve(rhs)
		}
	}
	reportScale(b, a.N())
}

func benchCholBatch(b *testing.B, nx, ny int) {
	a, bs := scalingSystem(b, nx, ny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := sparse.FactorSparse(a, sparse.OrderND)
		if err != nil {
			b.Fatal(err)
		}
		f.SolveBatchWorkers(bs, 1)
	}
	reportScale(b, a.N())
}

func BenchmarkSolveScaleSparseChol10kSerial(b *testing.B) { benchCholSerial(b, 100, 100) }
func BenchmarkSolveScaleSparseChol10kBatch(b *testing.B)  { benchCholBatch(b, 100, 100) }

func BenchmarkSolveScaleSparseChol100kSerial(b *testing.B) { benchCholSerial(b, 317, 317) }
func BenchmarkSolveScaleSparseChol100kBatch(b *testing.B)  { benchCholBatch(b, 317, 317) }

// --- AMG-preconditioned CG, the 1M-node end of the curve ---

func benchAMGSerial(b *testing.B, nx, ny int) {
	if testing.Short() {
		b.Skip("1M-node mesh")
	}
	a, bs := scalingSystem(b, nx, ny)
	tol, maxIter := 1e-8, 10*a.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rhs := range bs {
			prec, err := sparse.NewAMG(a, sparse.AMGOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := sparse.PCG(a, rhs, nil, prec, tol, maxIter); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportScale(b, a.N())
}

func benchAMGBatch(b *testing.B, nx, ny int) {
	if testing.Short() {
		b.Skip("1M-node mesh")
	}
	a, bs := scalingSystem(b, nx, ny)
	tol, maxIter := 1e-8, 10*a.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prec, err := sparse.NewAMG(a, sparse.AMGOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sparse.PCGBatch(a, bs, nil, prec, tol, maxIter, nil, 1); err != nil {
			b.Fatal(err)
		}
	}
	reportScale(b, a.N())
}

func BenchmarkSolveScaleAMGPCG1MSerial(b *testing.B) { benchAMGSerial(b, 1000, 1000) }
func BenchmarkSolveScaleAMGPCG1MBatch(b *testing.B)  { benchAMGBatch(b, 1000, 1000) }
